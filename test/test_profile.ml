(* The checkpoint profiler: arming, sampling cadence, call-path
   labelling and the weighted table. *)

let check = Alcotest.check

let with_profile f () =
  Obs.Metrics.set_enabled true;
  Obs.Trace.clear ();
  Obs.Profile.disarm ();
  Obs.Profile.reset ();
  (* flush this domain's sampling countdown so cadence tests start from
     a known phase, then zero the registry *)
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Profile.hit "test.profile.flush";
  Obs.Profile.disarm ();
  Obs.Profile.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.disarm ();
      Obs.Profile.reset ();
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ();
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_disarmed_no_op () =
  check Alcotest.bool "disarmed by default" false (Obs.Profile.armed ());
  Obs.Profile.hit "test.profile.site";
  check Alcotest.int "nothing recorded" 0 (List.length (Obs.Profile.samples ()));
  check Alcotest.string "empty collapsed" "" (Obs.Profile.to_collapsed ())

let test_arm_validation () =
  check Alcotest.bool "sample_every 0 rejected" true
    (match Obs.Profile.arm ~sample_every:0 () with
    | exception Invalid_argument _ -> true
    | () -> false);
  Obs.Profile.arm ~sample_every:5 ();
  check Alcotest.bool "armed" true (Obs.Profile.armed ());
  check Alcotest.int "rate readable" 5 (Obs.Profile.sample_rate ());
  Obs.Profile.disarm ();
  check Alcotest.bool "disarmed" false (Obs.Profile.armed ())

(* without any open span the call path is just the site *)
let test_bare_site_path () =
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Profile.hit "test.profile.bare";
  check
    Alcotest.(list (pair (list string) int))
    "single-frame path"
    [ ([ "test.profile.bare" ], 1) ]
    (Obs.Profile.samples ())

(* every sample_every-th hit records, weighted by sample_every, so the
   total weight matches the true hit count on exact multiples *)
let test_sampling_cadence () =
  Obs.Profile.arm ~sample_every:3 ();
  for _ = 1 to 12 do
    Obs.Profile.hit "test.profile.cadence"
  done;
  (match Obs.Profile.samples () with
  | [ (frames, w) ] ->
    check Alcotest.(list string) "frames" [ "test.profile.cadence" ] frames;
    check Alcotest.int "weight = hits on exact multiples" 12 w
  | l -> Alcotest.failf "expected one path, got %d" (List.length l));
  check Alcotest.int "4 actual samples taken"
    4
    (match List.assoc_opt "profile.samples" (Obs.Metrics.snapshot ()) with
    | Some (Obs.Metrics.Counter n) -> n
    | _ -> -1)

(* hits under open spans are labelled with the span path *)
let test_span_path_labelling () =
  Obs.Trace.set_enabled true;
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Trace.span "outer" (fun () ->
      Obs.Profile.hit "site.a";
      Obs.Trace.span "inner" (fun () -> Obs.Profile.hit "site.b"));
  Obs.Profile.hit "site.a";
  check
    Alcotest.(list (pair (list string) int))
    "paths keep span context"
    [
      ([ "outer"; "inner"; "site.b" ], 1);
      ([ "outer"; "site.a" ], 1);
      ([ "site.a" ], 1);
    ]
    (Obs.Profile.samples ());
  (* site totals merge the two site.a paths *)
  check
    Alcotest.(list (pair string int))
    "totals merge across paths"
    [ ("site.a", 2); ("site.b", 1) ]
    (Obs.Profile.site_totals ())

let test_reset () =
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Profile.hit "test.profile.gone";
  Obs.Profile.reset ();
  check Alcotest.int "table cleared" 0 (List.length (Obs.Profile.samples ()));
  check Alcotest.bool "still armed after reset" true (Obs.Profile.armed ())

let test_to_json () =
  Obs.Profile.arm ~sample_every:2 ();
  for _ = 1 to 4 do
    Obs.Profile.hit "test.profile.json"
  done;
  let j = Obs.Profile.to_json () in
  check Alcotest.bool "sample_every recorded" true
    (Obs.Json.member "sample_every" j = Some (Obs.Json.Int 2));
  match Obs.Json.member "paths" j with
  | Some (Obs.Json.List [ path ]) ->
    check Alcotest.bool "weight" true
      (Obs.Json.member "weight" path = Some (Obs.Json.Int 4));
    check Alcotest.bool "frames" true
      (Obs.Json.member "frames" path
      = Some (Obs.Json.List [ Obs.Json.String "test.profile.json" ]))
  | _ -> Alcotest.fail "paths missing"

(* guard checkpoints under an ambient guard feed the profiler *)
let test_guard_checkpoint_feeds_profiler () =
  Guard.Chaos.disarm ();
  Obs.Profile.arm ~sample_every:1 ();
  let g = Guard.create ~fuel:100 () in
  Guard.with_guard g (fun () ->
      for _ = 1 to 3 do
        Guard.checkpoint "test.profile.guarded"
      done);
  check
    Alcotest.(list (pair string int))
    "checkpoint site sampled"
    [ ("test.profile.guarded", 3) ]
    (Obs.Profile.site_totals ())

let () =
  Alcotest.run "profile"
    [
      ( "arming",
        [
          Alcotest.test_case "disarmed is a no-op" `Quick
            (with_profile test_disarmed_no_op);
          Alcotest.test_case "validation and state" `Quick
            (with_profile test_arm_validation);
        ] );
      ( "sampling",
        [
          Alcotest.test_case "bare site path" `Quick
            (with_profile test_bare_site_path);
          Alcotest.test_case "cadence" `Quick (with_profile test_sampling_cadence);
          Alcotest.test_case "span path labelling" `Quick
            (with_profile test_span_path_labelling);
          Alcotest.test_case "reset" `Quick (with_profile test_reset);
        ] );
      ( "export",
        [
          Alcotest.test_case "json" `Quick (with_profile test_to_json);
          Alcotest.test_case "guard checkpoints feed the profiler" `Quick
            (with_profile test_guard_checkpoint_feeds_profiler);
        ] );
    ]
