(* Golden conformance for the bulk bit-matrix engine: pins the E16
   cells' relation sizes and bulk.* counter deltas (per strategy, fixed
   seeds, one domain) plus the paper's Example 2.1 answer sets with the
   engine forced on.  Any change to the kernels' work accounting, the
   sweep schedule or — worse — the relations themselves shows up as a
   readable fixture diff.

   Counter deltas count 63-bit words (Sys.int_size on a 64-bit build),
   which the fixture assumes; the word counts would legitimately differ
   on a 32-bit build.

   Regenerate after an intentional change with

     INJCRPQ_GOLDEN_REGEN=$PWD/test/golden/bulk_e16.golden \
       dune exec test/test_golden_bulk.exe *)

let fixture = "golden/bulk_e16.golden"

let m_sweeps = Obs.Metrics.counter "bulk.sweeps"

let m_frontier = Obs.Metrics.counter "bulk.frontier_bits"

let m_words = Obs.Metrics.counter "bulk.words_anded"

let m_sparse = Obs.Metrics.counter "bulk.sweep_sparse"

let m_dense = Obs.Metrics.counter "bulk.sweep_dense"

let m_tiles = Obs.Metrics.counter "bulk.tiles"

let with_mode m f =
  let prev = Bulk_rpq.current_mode () in
  Bulk_rpq.set_mode m;
  Fun.protect ~finally:(fun () -> Bulk_rpq.set_mode prev) f

let rel_pairs rel =
  Array.fold_left
    (fun acc row -> Array.fold_left (fun a b -> if b then a + 1 else a) acc row)
    0 rel

let render () =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "# Pinned E16 bulk-engine work accounting (fixed seeds, 1 domain,";
  line "# 63-bit words) and Example 2.1 answers under INJCRPQ_BULK=on.";
  line "";
  Obs.Metrics.set_enabled true;
  Parmap.set_default_jobs 1;
  (* pin the sweep policy and tile geometry so an ambient
     INJCRPQ_BULK_SWEEP / INJCRPQ_BULK_BLOCK (e.g. a CI leg) cannot move
     the pinned work accounting *)
  let prev_sweep = Bulk_rpq.current_sweep () in
  let prev_block = Bulk_rpq.current_block_rows () in
  Bulk_rpq.set_sweep Bulk_rpq.Adaptive;
  Bulk_rpq.set_block_rows None;
  Fun.protect ~finally:(fun () ->
      Bulk_rpq.set_sweep prev_sweep;
      Bulk_rpq.set_block_rows prev_block;
      Obs.Metrics.set_enabled false)
  @@ fun () ->
  let cells =
    List.filter
      (fun (_, g, _) -> Graph.nnodes g <= 256)
      (Suite.e16_cells ~seed:16 ~quick:true)
  in
  List.iter
    (fun (name, g, re) ->
      let nfa = Nfa.of_regex re in
      let run strategy =
        let s0 = Obs.Metrics.counter_value m_sweeps in
        let f0 = Obs.Metrics.counter_value m_frontier in
        let w0 = Obs.Metrics.counter_value m_words in
        let sp0 = Obs.Metrics.counter_value m_sparse in
        let de0 = Obs.Metrics.counter_value m_dense in
        let t0 = Obs.Metrics.counter_value m_tiles in
        let rel = Bulk_rpq.reach_relation ~strategy g nfa in
        ( rel_pairs rel,
          Obs.Metrics.counter_value m_sweeps - s0,
          Obs.Metrics.counter_value m_frontier - f0,
          Obs.Metrics.counter_value m_words - w0,
          Obs.Metrics.counter_value m_sparse - sp0,
          Obs.Metrics.counter_value m_dense - de0,
          Obs.Metrics.counter_value m_tiles - t0 )
      in
      let pairs_ms, sweeps_ms, frontier_ms, words_ms, sparse_ms, dense_ms,
          tiles_ms =
        run Bulk_rpq.Multi_source
      in
      line
        "e16.%s.multi_source = pairs=%d sweeps=%d frontier_bits=%d \
         words_anded=%d sweep_sparse=%d sweep_dense=%d tiles=%d"
        name pairs_ms sweeps_ms frontier_ms words_ms sparse_ms dense_ms
        tiles_ms;
      let pairs_ap, sweeps_ap, _, words_ap, _, _, _ = run Bulk_rpq.All_pairs in
      line "e16.%s.all_pairs = pairs=%d sweeps=%d words_anded=%d" name pairs_ap
        sweeps_ap words_ap;
      if pairs_ap <> pairs_ms then
        line "e16.%s.DIVERGENCE pairs %d vs %d" name pairs_ms pairs_ap)
    cells;
  line "";
  let answers sem q g =
    match Eval.eval sem q g with
    | [] -> "(empty)"
    | rows ->
      rows
      |> List.map (fun tu -> String.concat "," (List.map string_of_int tu))
      |> String.concat " "
  in
  let q = Paper_examples.example_21_query in
  with_mode Bulk_rpq.On (fun () ->
      List.iter
        (fun sem ->
          line "bulk_on.example_21.G.%s = %s" (Semantics.to_string sem)
            (answers sem q Paper_examples.example_21_g))
        Semantics.all;
      List.iter
        (fun sem ->
          line "bulk_on.example_21.G'.%s = %s" (Semantics.to_string sem)
            (answers sem q Paper_examples.example_21_g'))
        Semantics.all);
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fixture () =
  let actual = render () in
  let expected = read_file fixture in
  if not (String.equal actual expected) then begin
    let al = String.split_on_char '\n' actual
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | a :: arest, e :: erest ->
        if String.equal a e then first_diff (i + 1) (arest, erest)
        else (i, e, a)
      | a :: _, [] -> (i, "<end of fixture>", a)
      | [], e :: _ -> (i, e, "<end of output>")
      | [], [] -> (i, "", "")
    in
    let i, e, a = first_diff 1 (al, el) in
    Alcotest.failf
      "golden fixture mismatch at line %d@.  fixture : %s@.  actual  : %s@.\
       (regenerate with INJCRPQ_GOLDEN_REGEN if the change is intentional)"
      i e a
  end

(* Independent of the fixture text: forcing the engine on must not move
   any Example 2.1 answer set, under any of the five semantics. *)
let test_example_21_bulk_invariance () =
  let q = Paper_examples.example_21_query in
  List.iter
    (fun g ->
      List.iter
        (fun sem ->
          let off = with_mode Bulk_rpq.Off (fun () -> Eval.eval sem q g) in
          let on = with_mode Bulk_rpq.On (fun () -> Eval.eval sem q g) in
          Alcotest.(check bool)
            (Printf.sprintf "Example 2.1 under %s" (Semantics.to_string sem))
            true (off = on))
        Semantics.all)
    [ Paper_examples.example_21_g; Paper_examples.example_21_g' ]

let () =
  match Sys.getenv_opt "INJCRPQ_GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (render ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "golden_bulk"
      [
        ( "bulk engine",
          [
            Alcotest.test_case "E16 fixture conformance" `Quick test_fixture;
            Alcotest.test_case "Example 2.1 bulk invariance" `Quick
              test_example_21_bulk_invariance;
          ] );
      ]
