(* Prometheus text exposition of metrics snapshots: name sanitisation,
   per-kind rendering, and the log2 -> cumulative-le bucket mapping. *)

let check = Alcotest.check

let with_metrics f () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let lines_of s = String.split_on_char '\n' (String.trim s)

let test_sanitize () =
  List.iter
    (fun (input, expected) ->
      check Alcotest.string input expected (Obs.Expo.sanitize input))
    [
      ("cache.morphism.hits", "cache_morphism_hits");
      ("already_clean_123", "already_clean_123");
      ("odd-name with:stuff", "odd_name_with_stuff");
    ]

let test_counter_and_gauge () =
  let c = Obs.Metrics.counter "containment.decisions" in
  let g = Obs.Metrics.gauge "test.depth" in
  Obs.Metrics.add c 7;
  Obs.Metrics.set g (-2);
  let out = Obs.Expo.to_prometheus (Obs.Metrics.snapshot ()) in
  let lines = lines_of out in
  List.iter
    (fun l -> check Alcotest.bool ("line present: " ^ l) true (List.mem l lines))
    [
      "# TYPE injcrpq_containment_decisions counter";
      "injcrpq_containment_decisions 7";
      "# TYPE injcrpq_test_depth gauge";
      "injcrpq_test_depth -2";
    ]

(* log2 bucket k holds 2^k <= v < 2^(k+1), so its exposition bound is
   2^(k+1)-1 and counts accumulate: observations 1,1 (b0), 2,3 (b1),
   8 (b3), 1000 (b9) expose as le=1:2, le=3:4, le=15:5, le=1023:6. *)
let test_histogram_cumulative_buckets () =
  let h = Obs.Metrics.histogram "analysis.certificate_ns" in
  List.iter (Obs.Metrics.observe h) [ 1; 1; 2; 3; 8; 1000 ];
  let out = Obs.Expo.to_prometheus (Obs.Metrics.snapshot ()) in
  let lines = lines_of out in
  List.iter
    (fun l -> check Alcotest.bool ("line present: " ^ l) true (List.mem l lines))
    [
      "# TYPE injcrpq_analysis_certificate_ns histogram";
      "injcrpq_analysis_certificate_ns_bucket{le=\"1\"} 2";
      "injcrpq_analysis_certificate_ns_bucket{le=\"3\"} 4";
      "injcrpq_analysis_certificate_ns_bucket{le=\"15\"} 5";
      "injcrpq_analysis_certificate_ns_bucket{le=\"1023\"} 6";
      "injcrpq_analysis_certificate_ns_bucket{le=\"+Inf\"} 6";
      "injcrpq_analysis_certificate_ns_sum 1015";
      "injcrpq_analysis_certificate_ns_count 6";
    ]

let test_custom_namespace () =
  let c = Obs.Metrics.counter "x" in
  Obs.Metrics.incr c;
  let out = Obs.Expo.to_prometheus ~namespace:"my-app" (Obs.Metrics.snapshot ()) in
  check Alcotest.bool "namespace sanitised too" true
    (List.mem "my_app_x 1" (lines_of out))

(* write_prometheus writes exactly to_prometheus *)
let test_write_file () =
  let c = Obs.Metrics.counter "written.counter" in
  Obs.Metrics.add c 5;
  let snap = Obs.Metrics.snapshot () in
  let file = Filename.temp_file "injcrpq_expo" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Obs.Expo.write_prometheus file snap;
      let ic = open_in file in
      let n = in_channel_length ic in
      let contents = really_input_string ic n in
      close_in ic;
      check Alcotest.string "file matches renderer"
        (Obs.Expo.to_prometheus snap) contents)

let () =
  Alcotest.run "expo"
    [
      ( "names",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "custom namespace" `Quick
            (with_metrics test_custom_namespace);
        ] );
      ( "rendering",
        [
          Alcotest.test_case "counter and gauge" `Quick
            (with_metrics test_counter_and_gauge);
          Alcotest.test_case "histogram cumulative buckets" `Quick
            (with_metrics test_histogram_cumulative_buckets);
          Alcotest.test_case "write to file" `Quick (with_metrics test_write_file);
        ] );
    ]
