(* Crash-safety regression for the bench harness: chaos-trip one
   experiment and check that the results file on disk still parses,
   still carries the schema, and still holds every experiment that ran
   — the degraded one marked as such, the others ok.

   Runs the bench binary (argv.(1), wired via a dune dep) as a
   subprocess so the injected fault exercises the real file-rewriting
   path, not a simulation. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  if Array.length Sys.argv < 2 then fail "usage: test_bench_crash BENCH_EXE";
  let bench = Sys.argv.(1) in
  let out = Filename.temp_file "bench_crash" ".json" in
  at_exit (fun () -> try Sys.remove out with Sys_error _ -> ());
  (* trip the whole fig2 experiment on its first guard visit; the
     expansions experiment after it must still run and be recorded *)
  let cmd =
    Printf.sprintf
      "INJCRPQ_CHAOS=guard:bench.fig2:1 %s --quick --output=%s fig2 expansions \
       >/dev/null 2>&1"
      (Filename.quote bench) (Filename.quote out)
  in
  let rc = Sys.command cmd in
  if rc <> 0 then fail "bench exited %d under chaos (must degrade, not crash)" rc;
  let ic = open_in out in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let json =
    match Obs.Json.parse contents with
    | Ok j -> j
    | Error e -> fail "results file does not parse: %s" e
  in
  let str_field name j =
    match Obs.Json.member name j with
    | Some (Obs.Json.String s) -> s
    | _ -> fail "missing string field %S" name
  in
  if str_field "schema" json <> "injcrpq-bench/1" then
    fail "wrong schema: %s" (str_field "schema" json);
  let experiments =
    match Obs.Json.member "experiments" json with
    | Some (Obs.Json.List l) -> l
    | _ -> fail "missing experiments list"
  in
  let find name =
    match
      List.find_opt (fun e -> str_field "name" e = name) experiments
    with
    | Some e -> e
    | None -> fail "experiment %S missing from results" name
  in
  let fig2 = find "fig2" in
  if str_field "outcome" fig2 <> "timeout" then
    fail "tripped experiment outcome is %S, want timeout"
      (str_field "outcome" fig2);
  let detail = str_field "detail" fig2 in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  if not (contains ~sub:"fault injected" detail) then
    fail "detail %S does not mention the injected fault" detail;
  if not (contains ~sub:"bench.fig2" detail) then
    fail "detail %S does not name the tripped site" detail;
  let expansions = find "expansions" in
  if str_field "outcome" expansions <> "ok" then
    fail "later experiment outcome is %S, want ok" (str_field "outcome" expansions);
  print_endline "bench crash-safety: ok"
