(* Golden conformance test for the analysis CLI surfaces: pins the
   exact `injcrpq lint --json` and `injcrpq optimize --json` documents
   for examples/queries/*.crpq.  The CLI builds these documents through
   Analysis.lint_json / Analysis.optimize_json — the same functions
   called here — so schema drift in diagnostics, shape summaries or
   certificate reports shows up as a readable fixture diff.

   Regenerate after an intentional change with

     INJCRPQ_GOLDEN_REGEN=$PWD/test/golden/analysis_cli.golden \
       dune exec test/test_golden_analysis.exe *)

let fixture = "golden/analysis_cli.golden"

let example_files =
  [
    "../examples/queries/paper_examples.crpq";
    "../examples/queries/knowledge_graph.crpq";
  ]

(* CLI defaults: sem st, bound 4, all passes on (lint runs shape) *)
let sem = Semantics.St

(* certificate wall times are real clock readings; pin them to 0 so the
   fixture stays byte-stable while still asserting the field's presence
   and position *)
let scrub_wall_ns s =
  let key = "\"wall_ns\":" in
  let klen = String.length key in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub s !i klen = key then begin
      Buffer.add_string buf key;
      Buffer.add_char buf '0';
      i := !i + klen;
      while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
        incr i
      done
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let render () =
  let buf = Buffer.create 8192 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "# Pinned `injcrpq lint --json` / `injcrpq optimize --json` output for";
  line "# examples/queries/*.crpq (CLI defaults: -s st, bound 4, every pass on).";
  List.iter
    (fun path ->
      let queries =
        match Analysis.read_query_file path with
        | Ok qs -> qs
        | Error msg -> failwith msg
      in
      line "";
      line "## lint --json --file %s" (Filename.basename path);
      line "%s"
        (Analysis.lint_json
           (List.map (fun (name, q) -> (name, q, Analysis.lint ~sem ~shape:true q)) queries));
      line "";
      line "## optimize --json --file %s" (Filename.basename path);
      line "%s"
        (scrub_wall_ns
           (Obs.Json.to_string
              (Obs.Json.List
                 (List.map
                    (fun (name, q) ->
                      let q', report = Analysis.optimize ~sem q in
                      Analysis.optimize_json ~name ~sem ~before:q ~after:q'
                        report)
                    queries)))))
    example_files;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fixture () =
  let actual = render () in
  let expected = read_file fixture in
  if not (String.equal actual expected) then begin
    let al = String.split_on_char '\n' actual
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | a :: arest, e :: erest ->
        if String.equal a e then first_diff (i + 1) (arest, erest) else (i, e, a)
      | a :: _, [] -> (i, "<end of fixture>", a)
      | [], e :: _ -> (i, e, "<end of output>")
      | [], [] -> (i, "", "")
    in
    let i, e, a = first_diff 1 (al, el) in
    Alcotest.failf
      "golden fixture mismatch at line %d@.  fixture : %s@.  actual  : %s@.\
       (regenerate with INJCRPQ_GOLDEN_REGEN if the change is intentional)"
      i e a
  end

(* Structural sanity independent of the fixture text: the documents
   parse back and every emitted diagnostic code is catalogued. *)
let test_roundtrip_and_catalogue () =
  List.iter
    (fun path ->
      let queries =
        match Analysis.read_query_file path with
        | Ok qs -> qs
        | Error msg -> failwith msg
      in
      List.iter
        (fun (name, q) ->
          let ds = Analysis.lint ~sem ~shape:true q in
          (match Diagnostic.list_of_json (Diagnostic.list_to_json ds) with
          | Ok ds' ->
            Alcotest.(check int)
              (name ^ ": diagnostics round-trip")
              (List.length ds) (List.length ds')
          | Error msg -> Alcotest.failf "%s: list_of_json failed: %s" name msg);
          List.iter
            (fun d ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: code %s catalogued" name d.Diagnostic.code)
                true
                (Catalog.find d.Diagnostic.code <> None))
            ds)
        queries)
    example_files

let () =
  match Sys.getenv_opt "INJCRPQ_GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (render ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "golden_analysis"
      [
        ( "analysis cli",
          [
            Alcotest.test_case "fixture conformance" `Quick test_fixture;
            Alcotest.test_case "round-trip and catalogue" `Quick
              test_roundtrip_and_catalogue;
          ] );
      ]
