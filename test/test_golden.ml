(* Golden conformance test: pins the observable behaviour of the
   paper's running examples — the Example 2.1 / Figure 2 answer sets
   under every semantics and the eight Example 4.7 containment verdicts
   — to a committed fixture.  Any drift in evaluation, containment or
   pretty-printing shows up as a readable fixture diff.

   Regenerate after an intentional change with

     INJCRPQ_GOLDEN_REGEN=$PWD/test/golden/paper_examples.golden \
       dune exec test/test_golden.exe *)

let fixture = "golden/paper_examples.golden"

let render () =
  let buf = Buffer.create 2048 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let answers sem q g =
    match Eval.eval sem q g with
    | [] -> "(empty)"
    | rows ->
      rows
      |> List.map (fun tu -> String.concat "," (List.map string_of_int tu))
      |> String.concat " "
  in
  line "# Pinned behaviour of lib/core/paper_examples.ml.";
  line "# Answer sets are space-separated tuples of comma-separated nodes.";
  line "";
  let q = Paper_examples.example_21_query in
  line "example_21.query = %s" (Crpq.to_string q);
  List.iter
    (fun sem ->
      line "example_21.G.%s = %s" (Semantics.to_string sem)
        (answers sem q Paper_examples.example_21_g))
    Semantics.all;
  List.iter
    (fun sem ->
      line "example_21.G'.%s = %s" (Semantics.to_string sem)
        (answers sem q Paper_examples.example_21_g'))
    Semantics.all;
  line "";
  line "example_22.E1 = %s"
    (Format.asprintf "%a" Expansion.pp Paper_examples.example_22_e1);
  line "example_22.E2 = %s"
    (Format.asprintf "%a" Expansion.pp Paper_examples.example_22_e2);
  line "";
  List.iter
    (fun (name, sem, lhs, rhs, _expected) ->
      line "example_47.%s.%s = %s" name (Semantics.to_string sem)
        (Format.asprintf "%a" Containment.pp_verdict
           (Containment.decide sem lhs rhs)))
    Paper_examples.example_47_expectations;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The fixture is the source of truth; a mismatch prints the first
   diverging line of each side so the diff is actionable. *)
let test_fixture () =
  let actual = render () in
  let expected = read_file fixture in
  if not (String.equal actual expected) then begin
    let al = String.split_on_char '\n' actual
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | a :: arest, e :: erest ->
        if String.equal a e then first_diff (i + 1) (arest, erest)
        else (i, e, a)
      | a :: _, [] -> (i, "<end of fixture>", a)
      | [], e :: _ -> (i, e, "<end of output>")
      | [], [] -> (i, "", "")
    in
    let i, e, a = first_diff 1 (al, el) in
    Alcotest.failf
      "golden fixture mismatch at line %d@.  fixture : %s@.  actual  : %s@.\
       (regenerate with INJCRPQ_GOLDEN_REGEN if the change is intentional)"
      i e a
  end

(* The documented separations of Example 2.1 hold independently of the
   fixture text. *)
let test_example_21_separations () =
  let q = Paper_examples.example_21_query in
  let g = Paper_examples.example_21_g in
  let tu = Paper_examples.example_21_g_tuple in
  Alcotest.(check bool) "G: tuple in a-inj" true
    (Eval.check Semantics.A_inj q g tu);
  Alcotest.(check bool) "G: tuple not in q-inj" false
    (Eval.check Semantics.Q_inj q g tu);
  Alcotest.(check bool) "G: st = a-inj" true
    (Eval.eval Semantics.St q g = Eval.eval Semantics.A_inj q g);
  let g' = Paper_examples.example_21_g' in
  let t_st = Paper_examples.example_21_g'_tuple_st in
  let t_ainj = Paper_examples.example_21_g'_tuple_ainj in
  Alcotest.(check bool) "G': st tuple in st" true
    (Eval.check Semantics.St q g' t_st);
  Alcotest.(check bool) "G': st tuple not in a-inj" false
    (Eval.check Semantics.A_inj q g' t_st);
  Alcotest.(check bool) "G': a-inj tuple in a-inj" true
    (Eval.check Semantics.A_inj q g' t_ainj);
  Alcotest.(check bool) "G': a-inj tuple not in q-inj" false
    (Eval.check Semantics.Q_inj q g' t_ainj)

let test_example_47_verdicts () =
  List.iter
    (fun (name, sem, lhs, rhs, expected) ->
      match
        Containment.verdict_bool (Containment.decide sem lhs rhs)
      with
      | Some b -> Alcotest.(check bool) name expected b
      | None -> Alcotest.failf "%s: decider returned Unknown" name)
    Paper_examples.example_47_expectations

let () =
  match Sys.getenv_opt "INJCRPQ_GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (render ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "golden"
      [
        ( "paper examples",
          [
            Alcotest.test_case "fixture conformance" `Quick test_fixture;
            Alcotest.test_case "Example 2.1 separations" `Quick
              test_example_21_separations;
            Alcotest.test_case "Example 4.7 verdicts" `Quick
              test_example_47_verdicts;
          ] );
      ]
