(* Query_shape: acyclicity, articulation points, biconnected blocks and
   treewidth, cross-checked against brute force on small queries. *)

let q s = Crpq.parse s

(* ---------------- brute-force references ---------------- *)

(* simple underlying graph of a query, as (vertex count, adjacency) *)
let simple_graph (query : Crpq.t) =
  let vars = Array.of_list (Crpq.vars query) in
  let n = Array.length vars in
  let id x =
    let rec go i = if vars.(i) = x then i else go (i + 1) in
    go 0
  in
  let adj = Array.make_matrix n n false in
  List.iter
    (fun (a : Crpq.atom) ->
      let u = id a.Crpq.src and v = id a.Crpq.dst in
      if u <> v then begin
        adj.(u).(v) <- true;
        adj.(v).(u) <- true
      end)
    query.Crpq.atoms;
  (n, adj)

let width_of_order adj n order =
  let adj = Array.map Array.copy adj in
  let alive = Array.make n true in
  let width = ref (-1) in
  List.iter
    (fun v ->
      let nbrs = ref [] in
      for u = 0 to n - 1 do
        if alive.(u) && adj.(v).(u) then nbrs := u :: !nbrs
      done;
      if List.length !nbrs > !width then width := List.length !nbrs;
      List.iter
        (fun x -> List.iter (fun y -> if x <> y then adj.(x).(y) <- true) !nbrs)
        !nbrs;
      alive.(v) <- false)
    order;
  !width

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) l)))
      l

(* exact treewidth = min width over all elimination orders *)
let brute_treewidth query =
  let n, adj = simple_graph query in
  if n = 0 then -1
  else
    List.fold_left
      (fun acc order -> min acc (width_of_order adj n order))
      max_int
      (permutations (List.init n Fun.id))

(* acyclic multigraph: adding edges one by one via union-find, any edge
   (self-loops included) joining an already-connected pair closes a cycle *)
let brute_acyclic (query : Crpq.t) =
  let vars = Crpq.vars query in
  let parent = Hashtbl.create 8 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | Some p when p <> x ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
    | _ -> x
  in
  List.iter (fun x -> Hashtbl.replace parent x x) vars;
  List.for_all
    (fun (a : Crpq.atom) ->
      let ru = find a.Crpq.src and rv = find a.Crpq.dst in
      if ru = rv then false
      else begin
        Hashtbl.replace parent ru rv;
        true
      end)
    query.Crpq.atoms

(* articulation point: removing the vertex increases the component count
   of its graph (counted over the remaining vertices) *)
let brute_articulation (query : Crpq.t) =
  let vars = Crpq.vars query in
  let ncomp keep =
    let kept = List.filter keep vars in
    let seen = Hashtbl.create 8 in
    let rec dfs x =
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        List.iter
          (fun (a : Crpq.atom) ->
            if a.Crpq.src = x && keep a.Crpq.dst then dfs a.Crpq.dst;
            if a.Crpq.dst = x && keep a.Crpq.src then dfs a.Crpq.src)
          query.Crpq.atoms
      end
    in
    List.fold_left
      (fun c x ->
        if Hashtbl.mem seen x then c
        else begin
          dfs x;
          c + 1
        end)
      0 kept
  in
  (* removing v from its component leaves k >= 2 pieces iff the total
     count strictly increases *)
  let all = ncomp (fun _ -> true) in
  List.filter (fun v -> ncomp (fun x -> x <> v) > all) vars

(* ---------------- fixed examples ---------------- *)

let check_width name query expected =
  let w, exact = Query_shape.treewidth (Query_shape.of_crpq query) in
  Alcotest.(check int) (name ^ " width") expected w;
  Alcotest.(check bool) (name ^ " exact") true exact

let test_known_widths () =
  check_width "single atom" (q "Q() :- x -[a]-> y") 1;
  check_width "chain" (q "Q() :- x -[a]-> y, y -[b]-> z, z -[c]-> w") 1;
  check_width "triangle" (q "Q() :- x -[a]-> y, y -[b]-> z, z -[c]-> x") 2;
  check_width "4-cycle" (q "Q() :- x -[a]-> y, y -[a]-> z, z -[a]-> w, w -[a]-> x") 2;
  check_width "self loop" (q "Q() :- x -[a]-> x") 0;
  (* K4 *)
  check_width "K4"
    (q
       "Q() :- x -[a]-> y, x -[a]-> z, x -[a]-> w, y -[a]-> z, y -[a]-> w, z \
        -[a]-> w")
    3;
  (* two components: a triangle and an edge *)
  check_width "triangle + edge"
    (q "Q() :- x -[a]-> y, y -[b]-> z, z -[c]-> x, u -[a]-> v")
    2

let test_acyclicity () =
  let acyclic s = Query_shape.is_acyclic (Query_shape.of_crpq (q s)) in
  Alcotest.(check bool) "chain acyclic" true (acyclic "Q() :- x -[a]-> y, y -[b]-> z");
  Alcotest.(check bool) "self loop cyclic" false (acyclic "Q() :- x -[a]-> x");
  Alcotest.(check bool)
    "parallel atoms cyclic" false
    (acyclic "Q() :- x -[a]-> y, x -[b]-> y");
  Alcotest.(check bool)
    "opposite atoms cyclic" false
    (acyclic "Q() :- x -[a]-> y, y -[b]-> x");
  Alcotest.(check bool)
    "triangle cyclic" false
    (acyclic "Q() :- x -[a]-> y, y -[b]-> z, z -[c]-> x");
  Alcotest.(check bool) "forest acyclic" true (acyclic "Q() :- x -[a]-> y, u -[b]-> v")

let test_articulation_fixed () =
  let aps s = Query_shape.articulation_points (Query_shape.of_crpq (q s)) in
  Alcotest.(check (list string))
    "chain midpoint" [ "y" ]
    (aps "Q() :- x -[a]-> y, y -[b]-> z");
  Alcotest.(check (list string)) "triangle has none" [] (aps "Q() :- x -[a]-> y, y -[b]-> z, z -[c]-> x");
  Alcotest.(check (list string))
    "bowtie centre" [ "y" ]
    (aps
       "Q() :- x -[a]-> y, y -[a]-> x, y -[a]-> z, z -[a]-> y")

let test_biconnected () =
  (* bowtie: two 2-edge blocks meeting at y *)
  let g =
    Query_shape.of_crpq
      (q "Q() :- x -[a]-> y, y -[b]-> x, y -[a]-> z, z -[b]-> y")
  in
  let blocks = List.sort compare (Query_shape.biconnected_components g) in
  Alcotest.(check int) "two blocks" 2 (List.length blocks);
  List.iter
    (fun b -> Alcotest.(check int) "block size" 2 (List.length b))
    blocks;
  Alcotest.(check (list int))
    "blocks partition the atoms" [ 0; 1; 2; 3 ]
    (List.sort compare (List.concat blocks));
  (* self-loops become singleton blocks *)
  let g2 = Query_shape.of_crpq (q "Q() :- x -[a]-> x, x -[a]-> y") in
  let blocks2 = Query_shape.biconnected_components g2 in
  Alcotest.(check int) "loop + bridge" 2 (List.length blocks2)

let test_decomposition_shape () =
  let query = q "Q(x) :- x -[a]-> y, y -[b]-> z, z -[c]-> x, z -[a]-> w" in
  let g = Query_shape.of_crpq query in
  let d = Query_shape.decompose g in
  let n = Query_shape.nvars g in
  Alcotest.(check int) "one bag per vertex" n (Array.length d.Query_shape.bags);
  (* every vertex occurs in some bag *)
  for v = 0 to n - 1 do
    Alcotest.(check bool) "vertex covered" true
      (Array.exists (fun bag -> List.mem v bag) d.Query_shape.bags)
  done;
  (* every edge is inside some bag *)
  List.iter
    (fun (a : Crpq.atom) ->
      let names = Query_shape.var_names g in
      let id x =
        let rec go i = if names.(i) = x then i else go (i + 1) in
        go 0
      in
      let u = id a.Crpq.src and v = id a.Crpq.dst in
      Alcotest.(check bool) "edge covered" true
        (Array.exists
           (fun bag -> List.mem u bag && List.mem v bag)
           d.Query_shape.bags))
    query.Crpq.atoms;
  (* width consistent with the bags *)
  let max_bag =
    Array.fold_left (fun acc bag -> max acc (List.length bag)) 0 d.Query_shape.bags
  in
  Alcotest.(check int) "width = max bag - 1" (max_bag - 1) d.Query_shape.width

let test_diagnostics () =
  let ds = Query_shape.diagnostics (q "Q(x) :- x -[a]-> y, y -[b]-> z") in
  let codes c = List.filter (fun d -> d.Diagnostic.code = c) ds in
  Alcotest.(check int) "one I101" 1 (List.length (codes "I101"));
  Alcotest.(check int) "one I102 per bag" 3 (List.length (codes "I102"));
  Alcotest.(check int) "one I103 (y)" 1 (List.length (codes "I103"));
  List.iter
    (fun d ->
      Alcotest.(check bool) "info severity" true (d.Diagnostic.severity = Diagnostic.Info))
    ds

let test_guard_fallback () =
  (* a chaos trip at analysis.treewidth mid-search degrades to the
     min-fill bound (exact = false) instead of escaping *)
  let query =
    q
      "Q() :- x -[a]-> y, x -[a]-> z, x -[a]-> w, y -[a]-> z, y -[a]-> w, z \
       -[a]-> w"
  in
  (* visit 1: K4's min-fill incumbent is already optimal, so the B&B
     prunes everything at the root and hits the checkpoint only once *)
  Guard.Chaos.arm [ ("analysis.treewidth", 1) ];
  Fun.protect ~finally:Guard.Chaos.disarm (fun () ->
      Guard.with_guard (Guard.unlimited ()) @@ fun () ->
      let w, exact = Query_shape.treewidth (Query_shape.of_crpq query) in
      Alcotest.(check bool) "inexact after trip" false exact;
      (* min-fill on K4 still finds 3 *)
      Alcotest.(check int) "min-fill width" 3 w)

(* ---------------- randomized cross-checks ---------------- *)

let gen_shape_query =
  (* up to 6 variables so the permutation brute force stays tiny *)
  Testutil.gen_crpq ~cls:Crpq.Class_cq ~max_atoms:8 ~max_vars:6 ()

let qtests =
  [
    Testutil.qtest ~count:200 "treewidth matches brute force (<=6 vars)"
      gen_shape_query (fun query ->
        let w, exact = Query_shape.treewidth (Query_shape.of_crpq query) in
        exact && w = brute_treewidth query);
    Testutil.qtest ~count:200 "acyclicity matches union-find" gen_shape_query
      (fun query ->
        Query_shape.is_acyclic (Query_shape.of_crpq query) = brute_acyclic query);
    Testutil.qtest ~count:200 "articulation points match brute force"
      gen_shape_query (fun query ->
        Query_shape.articulation_points (Query_shape.of_crpq query)
        = List.sort compare (brute_articulation query));
    Testutil.qtest ~count:200 "biconnected blocks partition the non-loop atoms"
      gen_shape_query (fun query ->
        let g = Query_shape.of_crpq query in
        let atoms = List.sort compare (List.concat (Query_shape.biconnected_components g)) in
        atoms = List.init (Query_shape.natoms g) Fun.id);
    Testutil.qtest ~count:200 "decomposition covers vertices and edges"
      gen_shape_query (fun query ->
        let g = Query_shape.of_crpq query in
        let d = Query_shape.decompose g in
        let n = Query_shape.nvars g in
        let names = Query_shape.var_names g in
        let id x =
          let rec go i = if names.(i) = x then i else go (i + 1) in
          go 0
        in
        let vertex_ok =
          List.for_all
            (fun v -> Array.exists (fun bag -> List.mem v bag) d.Query_shape.bags)
            (List.init n Fun.id)
        in
        let edge_ok =
          List.for_all
            (fun (a : Crpq.atom) ->
              let u = id a.Crpq.src and v = id a.Crpq.dst in
              Array.exists
                (fun bag -> List.mem u bag && List.mem v bag)
                d.Query_shape.bags)
            query.Crpq.atoms
        in
        vertex_ok && edge_ok);
  ]

let () =
  Alcotest.run "query_shape"
    [
      ( "fixed",
        [
          Alcotest.test_case "known treewidths" `Quick test_known_widths;
          Alcotest.test_case "acyclicity" `Quick test_acyclicity;
          Alcotest.test_case "articulation points" `Quick test_articulation_fixed;
          Alcotest.test_case "biconnected blocks" `Quick test_biconnected;
          Alcotest.test_case "decomposition shape" `Quick test_decomposition_shape;
          Alcotest.test_case "I10x diagnostics" `Quick test_diagnostics;
          Alcotest.test_case "guard fallback" `Quick test_guard_fallback;
        ] );
      ("random", qtests);
    ]
