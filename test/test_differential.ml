(* Differential test suite for the memoization + multicore layer.

   Every decider must be a pure function of its inputs: switching the
   memo tables off (INJCRPQ_CACHE / Cache.set_enabled) or fanning the
   expansion search across several domains (Parmap) must never change a
   verdict, a witness, or an answer set.  Each property below draws a
   random workload from lib/workload, runs the decider under four
   configurations — {cached, uncached} x {1 domain, 2 domains} — and
   requires the exact same result as the uncached sequential reference. *)

let labels = [ "a"; "b" ]

(* ---------------- configurations ---------------- *)

type config = { cname : string; cached : bool; jobs : int }

let reference = { cname = "uncached/seq"; cached = false; jobs = 1 }

let variants =
  [
    { cname = "cached/seq"; cached = true; jobs = 1 };
    { cname = "uncached/par2"; cached = false; jobs = 2 };
    { cname = "cached/par2"; cached = true; jobs = 2 };
  ]

let with_config c f =
  Cache.clear_all ();
  Cache.set_enabled c.cached;
  Parmap.set_default_jobs c.jobs;
  Fun.protect
    ~finally:(fun () ->
      Parmap.set_default_jobs 1;
      Cache.set_enabled true;
      Cache.clear_all ())
    f

(* Run [run] under the reference configuration and every variant; fail
   with a replayable report as soon as one representation differs. *)
let agree ~pp_instance ~repr run =
  let expect = repr (with_config reference run) in
  List.for_all
    (fun c ->
      let got = repr (with_config c run) in
      if String.equal got expect then true
      else
        QCheck2.Test.fail_reportf
          "configuration %s diverges from %s on %s@.reference: %s@.got: %s"
          c.cname reference.cname (pp_instance ()) expect got)
    variants

(* ---------------- workloads from lib/workload ---------------- *)

(* qcheck generates an integer seed; the actual instance is drawn from
   lib/workload's generators with a state derived from that seed, so a
   shrunk counterexample is a single replayable integer. *)
let gen_seed = QCheck2.Gen.(int_bound 0x3FFFFFF)

let rng_of seed salt = Random.State.make [| 0x5EED; salt; seed |]

let pick_sem rng choices =
  List.nth choices (Random.State.int rng (List.length choices))

let crpq_pair_of seed =
  let rng = rng_of seed 1 in
  let sem = pick_sem rng Semantics.node_semantics in
  let cls = if Random.State.bool rng then Crpq.Class_fin else Crpq.Class_crpq in
  let pair =
    if Random.State.bool rng then
      Qgen.contained_pair ~rng ~labels ~nvars:3 ~natoms:2 ~cls ()
    else begin
      let q () =
        Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity:0 ~cls ()
      in
      let q1 = q () in
      (q1, q ())
    end
  in
  (sem, pair)

let verdict_repr v = Format.asprintf "%a" Containment.pp_verdict v

let test_containment =
  Testutil.qtest ~count:200 "Containment.decide: cache/domains invariant"
    gen_seed (fun seed ->
      let sem, (q1, q2) = crpq_pair_of seed in
      agree
        ~pp_instance:(fun () ->
          Printf.sprintf "[%s] %s vs %s" (Semantics.to_string sem)
            (Crpq.to_string q1) (Crpq.to_string q2))
        ~repr:verdict_repr
        (fun () -> Containment.decide ~bound:2 sem q1 q2))

let ucrpq_pair_of seed =
  let rng = rng_of seed 2 in
  let sem = pick_sem rng Semantics.node_semantics in
  let union () =
    let disjunct () =
      let cls =
        if Random.State.bool rng then Crpq.Class_fin else Crpq.Class_crpq
      in
      Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity:0 ~cls ()
    in
    Ucrpq.make [ disjunct (); disjunct () ]
  in
  (sem, union (), union ())

let test_ucrpq =
  Testutil.qtest ~count:200 "Ucrpq.contained: cache/domains invariant"
    gen_seed (fun seed ->
      let sem, u1, u2 = ucrpq_pair_of seed in
      agree
        ~pp_instance:(fun () ->
          Printf.sprintf "[%s] %s vs %s" (Semantics.to_string sem)
            (Ucrpq.to_string u1) (Ucrpq.to_string u2))
        ~repr:verdict_repr
        (fun () -> Ucrpq.contained ~bound:2 sem u1 u2))

let answers_repr rows =
  rows
  |> List.map (fun tuple -> String.concat "," (List.map string_of_int tuple))
  |> String.concat ";"

let eval_instance_of seed =
  let rng = rng_of seed 3 in
  let sem = pick_sem rng Semantics.all in
  let arity = Random.State.int rng 2 in
  let q =
    Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity
      ~cls:Crpq.Class_crpq ()
  in
  let g = Generate.gnp ~rng ~nodes:4 ~labels ~p:0.25 in
  (sem, q, g)

let test_eval =
  Testutil.qtest ~count:200 "Eval.eval: cache/domains invariant" gen_seed
    (fun seed ->
      let sem, q, g = eval_instance_of seed in
      agree
        ~pp_instance:(fun () ->
          Printf.sprintf "[%s] %s on %s" (Semantics.to_string sem)
            (Crpq.to_string q)
            (Format.asprintf "%a" Graph.pp g))
        ~repr:answers_repr
        (fun () -> Eval.eval sem q g))

(* ---------------- the certified optimizer ---------------- *)

(* Optimized queries must be observationally identical to the originals:
   same answer sets under Eval, compatible verdicts under the
   containment deciders (an exact verdict may not flip; Unknown may
   resolve, since rewriting can only make the instance easier).  Each
   property also re-runs the optimized decider under every
   cache/domains configuration. *)

(* bias towards rewritable queries: finite languages keep the
   certificate decider exact, and a duplicated atom gives the drop-atom
   pass something to prove (or, under q-inj, to refuse) *)
let optimizable_crpq rng ~arity =
  let q =
    Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity ~cls:Crpq.Class_fin ()
  in
  if Random.State.bool rng then
    match q.Crpq.atoms with
    | a :: _ -> Crpq.make ~free:q.Crpq.free (a :: q.Crpq.atoms)
    | [] -> q
  else q

let optimize_eval_instance_of seed =
  let rng = rng_of seed 4 in
  let sem = pick_sem rng Semantics.node_semantics in
  let q = optimizable_crpq rng ~arity:(Random.State.int rng 2) in
  let g = Generate.gnp ~rng ~nodes:4 ~labels ~p:0.3 in
  (sem, q, g)

let test_optimize_eval =
  Testutil.qtest ~count:200 "optimize preserves Eval.eval answer sets" gen_seed
    (fun seed ->
      let sem, q, g = optimize_eval_instance_of seed in
      let q', _ = Analysis.optimize ~sem ~bound:2 q in
      let pp_instance () =
        Printf.sprintf "[%s] %s ~> %s on %s" (Semantics.to_string sem)
          (Crpq.to_string q) (Crpq.to_string q')
          (Format.asprintf "%a" Graph.pp g)
      in
      let baseline = answers_repr (with_config reference (fun () -> Eval.eval sem q g)) in
      let optimized =
        answers_repr (with_config reference (fun () -> Eval.eval sem q' g))
      in
      if not (String.equal baseline optimized) then
        QCheck2.Test.fail_reportf
          "optimized answers diverge on %s@.original:  %s@.optimized: %s"
          (pp_instance ()) baseline optimized
      else
        agree ~pp_instance ~repr:answers_repr (fun () -> Eval.eval sem q' g))

(* exact verdicts must agree; Unknown may only appear on, or resolve
   from, the original *)
let verdicts_compatible ~original ~optimized =
  match Containment.verdict_bool original, Containment.verdict_bool optimized with
  | Some a, Some b -> a = b
  | None, _ | _, None -> true

let optimize_pair_of seed =
  let rng = rng_of seed 5 in
  let sem = pick_sem rng Semantics.node_semantics in
  let q1 = optimizable_crpq rng ~arity:0 in
  let q2 =
    if Random.State.bool rng then
      Qgen.random_crpq ~rng ~labels ~nvars:3 ~natoms:2 ~arity:0
        ~cls:Crpq.Class_fin ()
    else optimizable_crpq rng ~arity:0
  in
  (sem, q1, q2)

let test_optimize_containment =
  Testutil.qtest ~count:200 "optimize preserves Containment.decide verdicts"
    gen_seed (fun seed ->
      let sem, q1, q2 = optimize_pair_of seed in
      let q1', _ = Analysis.optimize ~sem ~bound:2 q1 in
      let q2', _ = Analysis.optimize ~sem ~bound:2 q2 in
      let pp_instance () =
        Printf.sprintf "[%s] %s vs %s (optimized: %s vs %s)"
          (Semantics.to_string sem) (Crpq.to_string q1) (Crpq.to_string q2)
          (Crpq.to_string q1') (Crpq.to_string q2')
      in
      let original =
        with_config reference (fun () -> Containment.decide ~bound:2 sem q1 q2)
      in
      let optimized =
        with_config reference (fun () -> Containment.decide ~bound:2 sem q1' q2')
      in
      if not (verdicts_compatible ~original ~optimized) then
        QCheck2.Test.fail_reportf
          "optimized verdict flips on %s@.original:  %s@.optimized: %s"
          (pp_instance ()) (verdict_repr original) (verdict_repr optimized)
      else
        agree ~pp_instance ~repr:verdict_repr (fun () ->
            Containment.decide ~bound:2 sem q1' q2'))

let optimize_ucrpq_pair_of seed =
  let rng = rng_of seed 6 in
  let sem = pick_sem rng Semantics.node_semantics in
  let union () = Ucrpq.make [ optimizable_crpq rng ~arity:0; optimizable_crpq rng ~arity:0 ] in
  (sem, union (), union ())

let test_optimize_ucrpq =
  Testutil.qtest ~count:200 "optimize preserves Ucrpq.contained verdicts"
    gen_seed (fun seed ->
      let sem, u1, u2 = optimize_ucrpq_pair_of seed in
      let u1', _ = Analysis.optimize_ucrpq ~sem ~bound:2 u1 in
      let u2', _ = Analysis.optimize_ucrpq ~sem ~bound:2 u2 in
      let pp_instance () =
        Printf.sprintf "[%s] %s vs %s (optimized: %s vs %s)"
          (Semantics.to_string sem) (Ucrpq.to_string u1) (Ucrpq.to_string u2)
          (Ucrpq.to_string u1') (Ucrpq.to_string u2')
      in
      let original =
        with_config reference (fun () -> Ucrpq.contained ~bound:2 sem u1 u2)
      in
      let optimized =
        with_config reference (fun () -> Ucrpq.contained ~bound:2 sem u1' u2')
      in
      if not (verdicts_compatible ~original ~optimized) then
        QCheck2.Test.fail_reportf
          "optimized verdict flips on %s@.original:  %s@.optimized: %s"
          (pp_instance ()) (verdict_repr original) (verdict_repr optimized)
      else
        agree ~pp_instance ~repr:verdict_repr (fun () ->
            Ucrpq.contained ~bound:2 sem u1' u2'))

(* ---------------- cache unit tests ---------------- *)

let test_lru_eviction () =
  let module L = Lru.Make (struct
    type t = int

    let equal = Int.equal
    let hash = Hashtbl.hash
  end) in
  let l = L.create ~cap:2 in
  ignore (L.add l 1 "one");
  ignore (L.add l 2 "two");
  (* touch 1 so 2 becomes the cold end *)
  Alcotest.(check (option string)) "find promotes" (Some "one") (L.find_opt l 1);
  let evicted = L.add l 3 "three" in
  Alcotest.(check int) "one eviction" 1 evicted;
  Alcotest.(check (option string)) "cold entry evicted" None (L.find_opt l 2);
  Alcotest.(check (option string)) "hot entry kept" (Some "one")
    (L.find_opt l 1);
  Alcotest.(check (option string)) "new entry present" (Some "three")
    (L.find_opt l 3);
  Alcotest.(check int) "length at cap" 2 (L.length l)

let test_hashcons_ids () =
  let module H = Hashcons.Make (struct
    type t = string list

    let equal = ( = )
    let hash = Hashtbl.hash
  end) in
  let t = H.create () in
  let a = H.id t [ "a"; "b" ] in
  let b = H.id t [ "c" ] in
  Alcotest.(check bool) "distinct keys, distinct ids" true (a <> b);
  Alcotest.(check int) "equal keys share an id" a (H.id t [ "a"; "b" ]);
  Alcotest.(check int) "two interned keys" 2 (H.count t)

let test_parmap_determinism () =
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "map is order-preserving" (List.map succ xs)
    (Parmap.map ~jobs:4 succ xs);
  let f _ x = if x >= 50 then Some x else None in
  (match Parmap.find_mapi ~jobs:4 f xs with
  | Some (i, v) ->
    Alcotest.(check int) "lowest matching index" 50 i;
    Alcotest.(check int) "its value" 50 v
  | None -> Alcotest.fail "find_mapi missed a match");
  Alcotest.(check (option (pair int int)))
    "no match" None
    (Parmap.find_mapi ~jobs:4 (fun _ _ -> None) xs)

let test_parmap_exception () =
  match Parmap.map ~jobs:3 (fun x -> if x = 7 then failwith "boom" else x)
          (List.init 20 (fun i -> i))
  with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Failure msg -> Alcotest.(check string) "re-raised" "boom" msg

let test_cache_hit_counters () =
  let hits = Obs.Metrics.counter "cache.nfa.of_regex.hits" in
  let was_enabled = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Cache.clear_all ();
  Cache.set_enabled true;
  let before = Obs.Metrics.counter_value hits in
  let re = Regex.seq (Regex.sym "a") (Regex.star (Regex.sym "b")) in
  let n1 = Nfa.of_regex re in
  let n2 = Nfa.of_regex (Regex.seq (Regex.sym "a") (Regex.star (Regex.sym "b"))) in
  Obs.Metrics.set_enabled was_enabled;
  Cache.clear_all ();
  (* while chaos injection is armed the memo layer bypasses itself, so the
     hit counter legitimately stays flat; the structural check still holds *)
  if not (Guard.Chaos.active ()) then
    Alcotest.(check bool)
      "memoized construction ticks the hit counter" true
      (Obs.Metrics.counter_value hits > before);
  Alcotest.(check int) "same automaton" (Nfa.key n1) (Nfa.key n2)

let test_cache_off_recomputes () =
  Cache.clear_all ();
  Cache.set_enabled false;
  let re = Regex.star (Regex.alt (Regex.sym "a") (Regex.sym "b")) in
  let n1 = Nfa.of_regex re in
  let n2 = Nfa.of_regex re in
  Cache.set_enabled true;
  (* distinct values, but structurally the same automaton *)
  Alcotest.(check bool) "uncached runs agree structurally" true (n1 = n2)

let () =
  Alcotest.run "differential"
    [
      ( "deciders",
        [ test_containment; test_ucrpq; test_eval ] );
      ( "optimize",
        [ test_optimize_eval; test_optimize_containment; test_optimize_ucrpq ] );
      ( "cache-units",
        [
          Alcotest.test_case "lru eviction order" `Quick test_lru_eviction;
          Alcotest.test_case "hashcons ids" `Quick test_hashcons_ids;
          Alcotest.test_case "parmap determinism" `Quick
            test_parmap_determinism;
          Alcotest.test_case "parmap exception propagation" `Quick
            test_parmap_exception;
          Alcotest.test_case "cache hit counters" `Quick
            test_cache_hit_counters;
          Alcotest.test_case "cache off recomputes" `Quick
            test_cache_off_recomputes;
        ] );
    ]
