(* Golden conformance for the observability export surfaces.

   A fixed instrumentation scenario runs under a fake 1µs-per-reading
   clock, so every export — span JSONL, Chrome trace_event JSON,
   collapsed flamegraph stacks, Prometheus exposition, event JSONL and
   the explain report — is byte-for-byte reproducible.  Any drift in an
   export format shows up as a readable fixture diff.

   Regenerate after an intentional change with

     INJCRPQ_GOLDEN_REGEN=$PWD/test/golden/obs_exports.golden \
       dune exec test/test_golden_obs.exe *)

let fixture = "golden/obs_exports.golden"

(* the metrics the scenario touches; everything else in the registry
   stays zero and is filtered out so unrelated new metrics cannot
   perturb the fixture *)
let scenario_metrics =
  [
    "containment.expansions_enumerated";
    "cache.morphism.hits";
    "cache.morphism.misses";
    "analysis.certificate_ns";
  ]

let render () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Trace.set_enabled true;
  Obs.Profile.reset ();
  Obs.Profile.arm ~sample_every:1 ();
  Obs.Events.set_enabled true;
  Obs.Events.clear ();
  let t = ref 0L in
  Obs.Clock.set_source ~name:"fake" (fun () ->
      t := Int64.add !t 1_000L;
      !t);
  Fun.protect
    ~finally:(fun () ->
      Obs.Clock.reset_source ();
      Obs.Events.set_enabled false;
      Obs.Events.clear ();
      Obs.Profile.disarm ();
      Obs.Profile.reset ();
      Obs.Trace.set_enabled false;
      Obs.Trace.clear ();
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      (* ---- the scenario ---- *)
      let steps = Obs.Metrics.counter "containment.expansions_enumerated" in
      let hits = Obs.Metrics.counter "cache.morphism.hits" in
      let misses = Obs.Metrics.counter "cache.morphism.misses" in
      let cost = Obs.Metrics.histogram "analysis.certificate_ns" in
      Obs.Trace.span "containment.decide" (fun () ->
          Obs.Metrics.add steps 3;
          Obs.Trace.span "dfa.product" (fun () ->
              Obs.Profile.hit "expansion.partitions";
              Obs.Profile.hit "expansion.partitions");
          Obs.Profile.hit "morphism.extend";
          Obs.Metrics.add hits 9;
          Obs.Metrics.add misses 3;
          List.iter (Obs.Metrics.observe cost) [ 2; 5; 900 ]);
      Obs.Events.emit Obs.Events.Warn "guard.trip"
        [ ("site", Obs.Json.String "expansion.partitions") ];
      Obs.Events.emit Obs.Events.Debug "cache.eviction"
        [ ("table", Obs.Json.String "morphism"); ("evicted", Obs.Json.Int 4) ];
      (* ---- the exports ---- *)
      let snap =
        List.filter
          (fun (name, _) -> List.mem name scenario_metrics)
          (Obs.Metrics.snapshot ())
      in
      let spans = Obs.Trace.finished () in
      let buf = Buffer.create 4096 in
      let section name body =
        Buffer.add_string buf ("== " ^ name ^ " ==\n");
        Buffer.add_string buf body;
        if body = "" || body.[String.length body - 1] <> '\n' then
          Buffer.add_char buf '\n'
      in
      Buffer.add_string buf
        "# Pinned export formats of lib/obs under a fake 1us clock.\n\n";
      section "span jsonl" (Obs.Trace.to_jsonl spans);
      section "chrome trace" (Obs.Json.to_string (Obs.Trace.to_chrome spans));
      section "collapsed stacks" (Obs.Profile.to_collapsed ());
      section "profile json" (Obs.Json.to_string (Obs.Profile.to_json ()));
      section "prometheus" (Obs.Expo.to_prometheus snap);
      section "event jsonl" (Obs.Events.to_jsonl (Obs.Events.recent ()));
      let report =
        Obs.Explain.add_section
          (Obs.Explain.of_metrics
             ~profile:(Obs.Profile.site_totals ())
             ~events:(Obs.Events.recent ())
             ~title:"golden scenario" snap)
          (Obs.Explain.section "verdict"
             [ Obs.Explain.row "answer" (Obs.Json.String "contained") ])
      in
      section "explain text" (Obs.Explain.to_text report);
      section "explain json" (Obs.Json.to_string (Obs.Explain.to_json report));
      Buffer.contents buf)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_fixture () =
  let actual = render () in
  let expected = read_file fixture in
  if not (String.equal actual expected) then begin
    let al = String.split_on_char '\n' actual
    and el = String.split_on_char '\n' expected in
    let rec first_diff i = function
      | a :: arest, e :: erest ->
        if String.equal a e then first_diff (i + 1) (arest, erest)
        else (i, e, a)
      | a :: _, [] -> (i, "<end of fixture>", a)
      | [], e :: _ -> (i, e, "<end of output>")
      | [], [] -> (i, "", "")
    in
    let i, e, a = first_diff 1 (al, el) in
    Alcotest.failf
      "golden fixture mismatch at line %d@.  fixture : %s@.  actual  : %s@.\
       (regenerate with INJCRPQ_GOLDEN_REGEN if the change is intentional)"
      i e a
  end

(* the render is a fixed point: running the scenario twice in the same
   process produces identical bytes (the fake clock and all obs state
   reset cleanly) *)
let test_render_idempotent () =
  Alcotest.(check string) "second render identical" (render ()) (render ())

let () =
  match Sys.getenv_opt "INJCRPQ_GOLDEN_REGEN" with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (render ());
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    Alcotest.run "golden_obs"
      [
        ( "obs exports",
          [
            Alcotest.test_case "fixture conformance" `Quick test_fixture;
            Alcotest.test_case "render idempotent" `Quick test_render_idempotent;
          ] );
      ]
