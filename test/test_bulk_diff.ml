(* Differential battery for the bulk bit-matrix RPQ engine.

   Three 200-instance suites, mirroring test_morphism_diff: for every
   random (graph, RPQ atom) the bulk all-pairs closure and the bulk
   multiple-source frontier BFS must each produce the exact relation of
   the pointwise [Path_search.reach_relation] — under every cache /
   domain configuration — with the deduped [Path_oracle] as an
   independent third opinion; and full-query [Eval.eval] under all five
   semantics must return identical answer sets with the engine forced on
   versus off (only standard-semantics atom relations may take the bulk
   path, so the injective semantics pin down that nothing else moved). *)

type config = { cname : string; cached : bool; jobs : int }

let configs =
  [
    { cname = "uncached/seq"; cached = false; jobs = 1 };
    { cname = "cached/seq"; cached = true; jobs = 1 };
    { cname = "uncached/par2"; cached = false; jobs = 2 };
    { cname = "cached/par2"; cached = true; jobs = 2 };
  ]

let with_config c f =
  Cache.clear_all ();
  Cache.set_enabled c.cached;
  Parmap.set_default_jobs c.jobs;
  Fun.protect
    ~finally:(fun () ->
      Parmap.set_default_jobs 1;
      Cache.set_enabled true;
      Cache.clear_all ())
    f

let with_mode m f =
  let prev = Bulk_rpq.current_mode () in
  Bulk_rpq.set_mode m;
  Fun.protect ~finally:(fun () -> Bulk_rpq.set_mode prev) f

let pp_rel rel =
  String.concat ";"
    (Array.to_list
       (Array.mapi
          (fun u row ->
            String.concat ""
              (Array.to_list (Array.map (fun b -> if b then "1" else "0") row))
            |> Printf.sprintf "%d:%s" u)
          rel))

(* ---------------- per-atom relations, per strategy ----------------- *)

let gen_case =
  QCheck2.Gen.(
    pair (Testutil.gen_graph ~max_nodes:6 ()) (Testutil.gen_regex ~max_depth:2 ()))

let check_strategy strategy (g, r) =
  let nfa = Nfa.of_regex r in
  let want = Path_search.reach_relation g nfa in
  let oracle = Path_oracle.reach_relation g nfa in
  if oracle <> want then
    QCheck2.Test.fail_reportf
      "Path_search diverges from the deduped oracle on %s / %s@.oracle %s@.got    %s"
      (Testutil.print_graph g) (Testutil.print_regex r) (pp_rel oracle)
      (pp_rel want);
  List.for_all
    (fun c ->
      let got =
        with_config c (fun () -> Bulk_rpq.reach_relation ~strategy g nfa)
      in
      if got = want then true
      else
        QCheck2.Test.fail_reportf
          "bulk %s diverges from Path_search under %s on %s / %s@.want %s@.got  %s"
          (match strategy with
          | Bulk_rpq.All_pairs -> "all-pairs"
          | Bulk_rpq.Multi_source -> "multi-source")
          c.cname (Testutil.print_graph g) (Testutil.print_regex r)
          (pp_rel want) (pp_rel got))
    configs

let test_all_pairs =
  Testutil.qtest ~count:200 "bulk all-pairs closure = Path_search relation"
    gen_case
    (check_strategy Bulk_rpq.All_pairs)

let test_multi_source =
  Testutil.qtest ~count:200 "bulk multi-source BFS = Path_search relation"
    gen_case
    (check_strategy Bulk_rpq.Multi_source)

(* ---------------- full-query Eval under all five semantics --------- *)

let gen_query_case =
  QCheck2.Gen.(
    let* g = Testutil.gen_graph ~max_nodes:4 () in
    let* arity = int_bound 2 in
    let* q = Testutil.gen_crpq ~max_atoms:2 ~max_vars:3 ~arity () in
    return (g, q))

let answers sem q g = Eval.eval sem q g

let test_eval_all_semantics =
  Testutil.qtest ~count:200
    "Eval answers identical with the bulk engine on vs off (5 semantics)"
    gen_query_case (fun (g, q) ->
      List.for_all
        (fun sem ->
          let want = with_mode Bulk_rpq.Off (fun () -> answers sem q g) in
          List.for_all
            (fun c ->
              let got =
                with_config c (fun () ->
                    with_mode Bulk_rpq.On (fun () -> answers sem q g))
              in
              if got = want then true
              else
                QCheck2.Test.fail_reportf
                  "Eval/%s with bulk on diverges under %s on %s / %s"
                  (Semantics.to_string sem) c.cname (Testutil.print_graph g)
                  (Crpq.to_string q))
            configs)
        Semantics.all)

(* ---------------- deterministic seams ------------------------------ *)

let test_auto_dispatch () =
  (* Auto keeps small graphs on the pointwise engine and switches past
     the crossover; On/Off force both ways regardless of size. *)
  let small = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
  let nfa = Nfa.of_regex (Regex.parse "a*") in
  with_mode Bulk_rpq.Auto (fun () ->
      Alcotest.(check bool) "auto: tiny graph stays pointwise" false
        (Bulk_rpq.use_bulk small nfa));
  with_mode Bulk_rpq.On (fun () ->
      Alcotest.(check bool) "on: forced" true (Bulk_rpq.use_bulk small nfa));
  with_mode Bulk_rpq.Off (fun () ->
      Alcotest.(check bool) "off: forced" false (Bulk_rpq.use_bulk small nfa));
  let rng = Random.State.make [| 0xB01; 42 |] in
  let big = Generate.gnp ~rng ~nodes:256 ~labels:[ "a"; "b" ] ~p:0.02 in
  with_mode Bulk_rpq.Auto (fun () ->
      Alcotest.(check bool) "auto: past the crossover goes bulk" true
        (Bulk_rpq.use_bulk big nfa))

let test_mode_strings () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check string)
        (Printf.sprintf "mode %s" s)
        (Bulk_rpq.mode_to_string m)
        (match Bulk_rpq.mode_of_string s with
        | Some m' -> Bulk_rpq.mode_to_string m'
        | None -> "?"))
    [
      ("on", Bulk_rpq.On);
      ("1", Bulk_rpq.On);
      ("true", Bulk_rpq.On);
      ("off", Bulk_rpq.Off);
      ("0", Bulk_rpq.Off);
      ("auto", Bulk_rpq.Auto);
      ("AUTO", Bulk_rpq.Auto);
    ];
  Alcotest.(check bool) "garbage rejected" true
    (Bulk_rpq.mode_of_string "fast" = None)

let test_mid_graph_crossagreement () =
  (* One deterministic mid-size instance (past the auto crossover) where
     all three engines and both strategies agree cell for cell. *)
  let rng = Random.State.make [| 0xB02; 7 |] in
  let g = Generate.gnp ~rng ~nodes:40 ~labels:[ "a"; "b" ] ~p:0.04 in
  let nfa = Nfa.of_regex (Regex.parse "a(a|b)*b?") in
  let want = Path_search.reach_relation g nfa in
  Alcotest.(check bool) "all-pairs agrees" true
    (Bulk_rpq.reach_relation ~strategy:Bulk_rpq.All_pairs g nfa = want);
  Alcotest.(check bool) "multi-source agrees" true
    (Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g nfa = want)

let () =
  Alcotest.run "bulk_diff"
    [
      ("relations", [ test_all_pairs; test_multi_source ]);
      ("eval", [ test_eval_all_semantics ]);
      ( "seams",
        [
          Alcotest.test_case "auto dispatch" `Quick test_auto_dispatch;
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "mid-size agreement" `Quick
            test_mid_graph_crossagreement;
        ] );
    ]
