(* Differential battery for the bulk bit-matrix RPQ engine.

   Three 200-instance suites, mirroring test_morphism_diff: for every
   random (graph, RPQ atom) the bulk all-pairs closure and the bulk
   multiple-source frontier BFS must each produce the exact relation of
   the pointwise [Path_search.reach_relation] — under every cache /
   domain configuration — with the deduped [Path_oracle] as an
   independent third opinion; and full-query [Eval.eval] under all five
   semantics must return identical answer sets with the engine forced on
   versus off (only standard-semantics atom relations may take the bulk
   path, so the injective semantics pin down that nothing else moved). *)

type config = { cname : string; cached : bool; jobs : int }

let configs =
  [
    { cname = "uncached/seq"; cached = false; jobs = 1 };
    { cname = "cached/seq"; cached = true; jobs = 1 };
    { cname = "uncached/par2"; cached = false; jobs = 2 };
    { cname = "cached/par2"; cached = true; jobs = 2 };
  ]

let with_config c f =
  Cache.clear_all ();
  Cache.set_enabled c.cached;
  Parmap.set_default_jobs c.jobs;
  Fun.protect
    ~finally:(fun () ->
      Parmap.set_default_jobs 1;
      Cache.set_enabled true;
      Cache.clear_all ())
    f

let with_mode m f =
  let prev = Bulk_rpq.current_mode () in
  Bulk_rpq.set_mode m;
  Fun.protect ~finally:(fun () -> Bulk_rpq.set_mode prev) f

let with_sweep s f =
  let prev = Bulk_rpq.current_sweep () in
  Bulk_rpq.set_sweep s;
  Fun.protect ~finally:(fun () -> Bulk_rpq.set_sweep prev) f

let with_block b f =
  let prev = Bulk_rpq.current_block_rows () in
  Bulk_rpq.set_block_rows b;
  Fun.protect ~finally:(fun () -> Bulk_rpq.set_block_rows prev) f

let pp_rel rel =
  String.concat ";"
    (Array.to_list
       (Array.mapi
          (fun u row ->
            String.concat ""
              (Array.to_list (Array.map (fun b -> if b then "1" else "0") row))
            |> Printf.sprintf "%d:%s" u)
          rel))

(* ---------------- per-atom relations, per strategy ----------------- *)

let gen_case =
  QCheck2.Gen.(
    pair (Testutil.gen_graph ~max_nodes:6 ()) (Testutil.gen_regex ~max_depth:2 ()))

let check_strategy strategy (g, r) =
  let nfa = Nfa.of_regex r in
  let want = Path_search.reach_relation g nfa in
  let oracle = Path_oracle.reach_relation g nfa in
  if oracle <> want then
    QCheck2.Test.fail_reportf
      "Path_search diverges from the deduped oracle on %s / %s@.oracle %s@.got    %s"
      (Testutil.print_graph g) (Testutil.print_regex r) (pp_rel oracle)
      (pp_rel want);
  List.for_all
    (fun c ->
      let got =
        with_config c (fun () -> Bulk_rpq.reach_relation ~strategy g nfa)
      in
      if got = want then true
      else
        QCheck2.Test.fail_reportf
          "bulk %s diverges from Path_search under %s on %s / %s@.want %s@.got  %s"
          (match strategy with
          | Bulk_rpq.All_pairs -> "all-pairs"
          | Bulk_rpq.Multi_source -> "multi-source")
          c.cname (Testutil.print_graph g) (Testutil.print_regex r)
          (pp_rel want) (pp_rel got))
    configs

let test_all_pairs =
  Testutil.qtest ~count:200 "bulk all-pairs closure = Path_search relation"
    gen_case
    (check_strategy Bulk_rpq.All_pairs)

let test_multi_source =
  Testutil.qtest ~count:200 "bulk multi-source BFS = Path_search relation"
    gen_case
    (check_strategy Bulk_rpq.Multi_source)

(* ---------------- full-query Eval under all five semantics --------- *)

let gen_query_case =
  QCheck2.Gen.(
    let* g = Testutil.gen_graph ~max_nodes:4 () in
    let* arity = int_bound 2 in
    let* q = Testutil.gen_crpq ~max_atoms:2 ~max_vars:3 ~arity () in
    return (g, q))

let answers sem q g = Eval.eval sem q g

let test_eval_all_semantics =
  Testutil.qtest ~count:200
    "Eval answers identical with the bulk engine on vs off (5 semantics)"
    gen_query_case (fun (g, q) ->
      List.for_all
        (fun sem ->
          let want = with_mode Bulk_rpq.Off (fun () -> answers sem q g) in
          List.for_all
            (fun c ->
              let got =
                with_config c (fun () ->
                    with_mode Bulk_rpq.On (fun () -> answers sem q g))
              in
              if got = want then true
              else
                QCheck2.Test.fail_reportf
                  "Eval/%s with bulk on diverges under %s on %s / %s"
                  (Semantics.to_string sem) c.cname (Testutil.print_graph g)
                  (Crpq.to_string q))
            configs)
        Semantics.all)

(* -------- sweep kernels × tiling: one differential matrix ---------- *)

(* Every (forced sweep kernel, tile height) combination must reproduce
   the pointwise relation bit for bit — B=1 exercises every tile seam,
   a huge B the single-tile path, None the budget-derived default; the
   sparse/dense kernels cover both sides of the adaptive switch. *)
let sweep_tilings =
  [
    (Bulk_rpq.Sparse, Some 1);
    (Bulk_rpq.Sparse, Some 1024);
    (Bulk_rpq.Sparse, None);
    (Bulk_rpq.Dense, Some 1);
    (Bulk_rpq.Dense, Some 1024);
    (Bulk_rpq.Dense, None);
    (Bulk_rpq.Adaptive, Some 2);
    (Bulk_rpq.Adaptive, None);
  ]

let test_sweep_tiling_matrix =
  Testutil.qtest ~count:200
    "forced sweep kernels x tile heights all match Path_search" gen_case
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let want = Path_search.reach_relation g nfa in
      List.for_all
        (fun (sw, b) ->
          let got =
            with_sweep sw (fun () ->
                with_block b (fun () ->
                    Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g
                      nfa))
          in
          if got = want then true
          else
            QCheck2.Test.fail_reportf
              "sweep=%s block=%s diverges on %s / %s@.want %s@.got  %s"
              (Bulk_rpq.sweep_to_string sw)
              (match b with None -> "default" | Some n -> string_of_int n)
              (Testutil.print_graph g) (Testutil.print_regex r) (pp_rel want)
              (pp_rel got))
        sweep_tilings)

(* ---------------- tile seams: counter accounting ------------------- *)

let m_tiles = Obs.Metrics.counter "bulk.tiles"

let m_sweep_sparse = Obs.Metrics.counter "bulk.sweep_sparse"

let m_sweep_dense = Obs.Metrics.counter "bulk.sweep_dense"

let with_metrics f =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) f

let test_tile_accounting () =
  let rng = Random.State.make [| 0xB03; 11 |] in
  let g = Generate.gnp ~rng ~nodes:60 ~labels:[ "a"; "b" ] ~p:0.04 in
  let nfa = Nfa.of_regex (Regex.parse "(a|b)*") in
  let srcs = Array.init 17 (fun i -> (i * 7) mod Graph.nnodes g) in
  let run b =
    with_metrics (fun () ->
        with_block b (fun () ->
            let t0 = Obs.Metrics.counter_value m_tiles in
            Bulk_rpq.reset_peak_tile_words ();
            let pairs = Bulk_rpq.reach_pairs g nfa srcs in
            (pairs, Obs.Metrics.counter_value m_tiles - t0)))
  in
  let pairs1, tiles1 = run (Some 1) in
  Alcotest.(check int) "B=1: one tile per source" (Array.length srcs) tiles1;
  let peak1 = Bulk_rpq.peak_tile_words () in
  let wpr = (Graph.nnodes g + Sys.int_size - 1) / Sys.int_size in
  Alcotest.(check bool) "B=1: peak tile memory is O(B*n)" true
    (peak1 <= 3 * nfa.Nfa.nstates * 1 * wpr);
  let pairs_all, tiles_all = run (Some 1024) in
  Alcotest.(check int) "B>=s: a single tile" 1 tiles_all;
  let pairs_def, tiles_def = run None in
  Alcotest.(check int) "default budget covers 17 sources in one tile" 1
    tiles_def;
  let rows m =
    List.init (Array.length srcs) (fun i ->
        let acc = ref [] in
        Bitmatrix.iter_row m i (fun v -> acc := v :: !acc);
        List.rev !acc)
  in
  Alcotest.(check bool) "B=1 rows = single-tile rows" true
    (rows pairs1 = rows pairs_all);
  Alcotest.(check bool) "default rows = single-tile rows" true
    (rows pairs_def = rows pairs_all)

let test_forced_sweep_counters () =
  let rng = Random.State.make [| 0xB04; 3 |] in
  let g = Generate.gnp ~rng ~nodes:48 ~labels:[ "a"; "b" ] ~p:0.05 in
  let nfa = Nfa.of_regex (Regex.parse "a(a|b)*") in
  let count sw =
    with_metrics (fun () ->
        with_sweep sw (fun () ->
            let sp0 = Obs.Metrics.counter_value m_sweep_sparse in
            let de0 = Obs.Metrics.counter_value m_sweep_dense in
            ignore
              (Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g nfa);
            ( Obs.Metrics.counter_value m_sweep_sparse - sp0,
              Obs.Metrics.counter_value m_sweep_dense - de0 )))
  in
  let sp, de = count Bulk_rpq.Sparse in
  Alcotest.(check bool) "forced sparse: sparse sweeps only" true
    (sp > 0 && de = 0);
  let sp, de = count Bulk_rpq.Dense in
  Alcotest.(check bool) "forced dense: dense sweeps only" true
    (de > 0 && sp = 0);
  let sp, de = count Bulk_rpq.Adaptive in
  Alcotest.(check bool) "adaptive: every sweep counted exactly once" true
    (sp >= 0 && de >= 0 && sp + de > 0)

(* ---------------- chaos on the sparse path ------------------------- *)

let test_sparse_chaos =
  Testutil.qtest ~count:100
    "chaos at bulk.sweep with the sparse kernel forced: trip or right"
    QCheck2.Gen.(pair gen_case (int_range 1 3))
    (fun ((g, r), visit) ->
      with_sweep Bulk_rpq.Sparse (fun () ->
          with_block (Some 2) (fun () ->
              let nfa = Nfa.of_regex r in
              let want = Path_search.reach_relation g nfa in
              Guard.Chaos.arm [ ("bulk.sweep", visit) ];
              let outcome =
                Guard.run (fun () ->
                    Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g
                      nfa)
              in
              let armed_ok =
                match outcome with
                | Ok rel -> rel = want
                | Error { site; reason = Guard.Fault_injected _ } ->
                  site = "bulk.sweep"
                | Error _ -> false
              in
              Guard.Chaos.arm [ ("bulk.sweep", visit) ];
              let supervised =
                Guard.supervise (fun () ->
                    Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g
                      nfa)
              in
              Guard.Chaos.disarm ();
              armed_ok && supervised = Ok want)))

(* ---------------- deterministic seams ------------------------------ *)

let test_auto_dispatch () =
  (* Auto keeps small graphs on the pointwise engine and switches past
     the crossover; On/Off force both ways regardless of size. *)
  let small = Graph.make ~nnodes:2 [ (0, "a", 1) ] in
  let nfa = Nfa.of_regex (Regex.parse "a*") in
  with_mode Bulk_rpq.Auto (fun () ->
      Alcotest.(check bool) "auto: tiny graph stays pointwise" false
        (Bulk_rpq.use_bulk small nfa));
  with_mode Bulk_rpq.On (fun () ->
      Alcotest.(check bool) "on: forced" true (Bulk_rpq.use_bulk small nfa));
  with_mode Bulk_rpq.Off (fun () ->
      Alcotest.(check bool) "off: forced" false (Bulk_rpq.use_bulk small nfa));
  let rng = Random.State.make [| 0xB01; 42 |] in
  let big = Generate.gnp ~rng ~nodes:256 ~labels:[ "a"; "b" ] ~p:0.02 in
  with_mode Bulk_rpq.Auto (fun () ->
      Alcotest.(check bool) "auto: past the crossover goes bulk" true
        (Bulk_rpq.use_bulk big nfa))

let test_mode_strings () =
  List.iter
    (fun (s, m) ->
      Alcotest.(check string)
        (Printf.sprintf "mode %s" s)
        (Bulk_rpq.mode_to_string m)
        (match Bulk_rpq.mode_of_string s with
        | Some m' -> Bulk_rpq.mode_to_string m'
        | None -> "?"))
    [
      ("on", Bulk_rpq.On);
      ("1", Bulk_rpq.On);
      ("true", Bulk_rpq.On);
      ("off", Bulk_rpq.Off);
      ("0", Bulk_rpq.Off);
      ("auto", Bulk_rpq.Auto);
      ("AUTO", Bulk_rpq.Auto);
    ];
  Alcotest.(check bool) "garbage rejected" true
    (Bulk_rpq.mode_of_string "fast" = None)

let test_sweep_strings () =
  List.iter
    (fun (s, sw) ->
      Alcotest.(check string)
        (Printf.sprintf "sweep %s" s)
        (Bulk_rpq.sweep_to_string sw)
        (match Bulk_rpq.sweep_of_string s with
        | Some sw' -> Bulk_rpq.sweep_to_string sw'
        | None -> "?"))
    [
      ("sparse", Bulk_rpq.Sparse);
      ("SPARSE", Bulk_rpq.Sparse);
      ("dense", Bulk_rpq.Dense);
      ("auto", Bulk_rpq.Adaptive);
      ("adaptive", Bulk_rpq.Adaptive);
    ];
  Alcotest.(check bool) "garbage sweep rejected" true
    (Bulk_rpq.sweep_of_string "hybrid" = None)

let test_block_validation () =
  Alcotest.check_raises "block 0 rejected"
    (Invalid_argument "Bulk_rpq.set_block_rows") (fun () ->
      Bulk_rpq.set_block_rows (Some 0));
  Alcotest.check_raises "negative block rejected"
    (Invalid_argument "Bulk_rpq.set_block_rows") (fun () ->
      Bulk_rpq.set_block_rows (Some (-3)));
  with_block (Some 7) (fun () ->
      Alcotest.(check int) "override wins whatever the shape" 7
        (Bulk_rpq.block_rows ~nstates:5 ~nnodes:1_000_000));
  (* default: deterministic in the problem dimensions, >= 1, and
     shrinking with the row width *)
  let b_small = Bulk_rpq.block_rows ~nstates:3 ~nnodes:1_000 in
  let b_large = Bulk_rpq.block_rows ~nstates:3 ~nnodes:1_000_000 in
  Alcotest.(check bool) "default block positive and monotone" true
    (b_small >= b_large && b_large >= 1)

let test_mid_graph_crossagreement () =
  (* One deterministic mid-size instance (past the auto crossover) where
     all three engines and both strategies agree cell for cell. *)
  let rng = Random.State.make [| 0xB02; 7 |] in
  let g = Generate.gnp ~rng ~nodes:40 ~labels:[ "a"; "b" ] ~p:0.04 in
  let nfa = Nfa.of_regex (Regex.parse "a(a|b)*b?") in
  let want = Path_search.reach_relation g nfa in
  Alcotest.(check bool) "all-pairs agrees" true
    (Bulk_rpq.reach_relation ~strategy:Bulk_rpq.All_pairs g nfa = want);
  Alcotest.(check bool) "multi-source agrees" true
    (Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g nfa = want)

let () =
  Alcotest.run "bulk_diff"
    [
      ("relations", [ test_all_pairs; test_multi_source ]);
      ("eval", [ test_eval_all_semantics ]);
      ("kernels", [ test_sweep_tiling_matrix; test_sparse_chaos ]);
      ( "tiling",
        [
          Alcotest.test_case "tile accounting" `Quick test_tile_accounting;
          Alcotest.test_case "forced sweep counters" `Quick
            test_forced_sweep_counters;
        ] );
      ( "seams",
        [
          Alcotest.test_case "auto dispatch" `Quick test_auto_dispatch;
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "sweep strings" `Quick test_sweep_strings;
          Alcotest.test_case "block validation" `Quick test_block_validation;
          Alcotest.test_case "mid-size agreement" `Quick
            test_mid_graph_crossagreement;
        ] );
    ]
