(* The containment/evaluation characterizations of Section 4.1, tested
   as logical equivalences on randomized finite instances:

   - Lemma 4.4:  ∃E ∈ Exp(Q).  E --a-inj--> (G, v̄)
              ⟺ ∃F ∈ Exp^a-inj(Q).  F --inj--> (G, v̄)
   - Prop 4.2 (st)   : Q1 ⊆ Q2 ⟺ ∀E1 ∃E2. E2 ---> E1
   - Prop 4.3 (q-inj): Q1 ⊆ Q2 ⟺ ∀E1 ∃E2. E2 --inj--> E1
   - Prop 4.6 (a-inj): Q1 ⊆ Q2 ⟺ ∀F1 ∃E2. E2 --a-inj--> F1
                              ⟺ ∀F1 ∃F2. F2 --inj--> F1 *)

let inj_hom_to_expansion (e2 : Expansion.expanded) (f1 : Expansion.expanded) =
  (* F2 --inj--> F1 with positional free mapping *)
  let pattern, names = Cq.to_graph e2.Expansion.cq in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i x -> Hashtbl.replace index x i) names;
  let target, _ = Cq.to_graph f1.Expansion.cq in
  let f1_free = Cq.free_nodes f1.Expansion.cq in
  if List.length e2.Expansion.cq.Cq.free <> List.length f1_free then false
  else begin
    let fixed =
      List.map2
        (fun x u -> (Hashtbl.find index x, u))
        e2.Expansion.cq.Cq.free f1_free
    in
    Morphism.exists ~fixed ~injective:true ~pattern ~target ()
  end

let gen_small_fin = Testutil.gen_crpq ~cls:Crpq.Class_fin ~max_atoms:2 ~max_vars:2

let test_lemma_44 =
  Testutil.qtest ~count:40 "Lemma 4.4: a-inj homs = injective homs from merges"
    (QCheck2.Gen.pair (gen_small_fin ~arity:1 ()) (Testutil.gen_graph ~max_nodes:3 ()))
    (fun (q, g) ->
      List.for_all
        (fun v ->
          let tuple = [ v ] in
          let lhs =
            List.exists
              (fun e -> Eval.hom_from_expansion Semantics.A_inj e g tuple)
              (Expansion.finite_expansions q)
          in
          let rhs =
            List.exists
              (fun f ->
                (* F --inj--> (G, v̄) *)
                let pattern, names = Cq.to_graph f.Expansion.cq in
                let index = Hashtbl.create 16 in
                Array.iteri (fun i x -> Hashtbl.replace index x i) names;
                List.length f.Expansion.cq.Cq.free = List.length tuple
                &&
                let fixed =
                  List.map2
                    (fun x u -> (Hashtbl.find index x, u))
                    f.Expansion.cq.Cq.free tuple
                in
                Morphism.exists ~fixed ~injective:true ~pattern ~target:g ())
              (Expansion.finite_ainj_expansions q)
          in
          lhs = rhs)
        (Graph.nodes g))

let counterexample_free sem hom_check q1 q2 star_exp_q1 =
  (* ∀E1 ∈ star_exp(Q1). ∃E2 matching via hom_check — compared against
     the containment decider *)
  let chars =
    List.for_all (fun e1 -> hom_check q2 e1) (star_exp_q1 q1)
  in
  let decided =
    match Containment.verdict_bool (Containment.finite_lhs sem q1 q2) with
    | Some b -> b
    | None -> false
  in
  chars = decided

let eps_free_expansions q =
  List.concat_map
    (fun d -> Expansion.finite_expansions d)
    (Crpq.epsilon_free_disjuncts q)

let eps_free_ainj_expansions q =
  List.concat_map
    (fun d -> Expansion.finite_ainj_expansions d)
    (Crpq.epsilon_free_disjuncts q)

let gen_pair =
  QCheck2.Gen.pair (gen_small_fin ~arity:0 ()) (gen_small_fin ~arity:0 ())

let test_prop_42 =
  Testutil.qtest ~count:40 "Prop 4.2: st containment via homs between expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.St
        (fun q2 e1 ->
          let g, tuple = Expansion.to_graph e1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.St e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_expansions)

let test_prop_43 =
  Testutil.qtest ~count:40
    "Prop 4.3: q-inj containment via injective homs between expansions" gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.Q_inj
        (fun q2 e1 ->
          let g, tuple = Expansion.to_graph e1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.Q_inj e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_expansions)

let test_prop_46_item2 =
  Testutil.qtest ~count:30
    "Prop 4.6 (2): a-inj containment via a-inj homs to merged expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.A_inj
        (fun q2 f1 ->
          let g, tuple = Expansion.to_graph f1 in
          List.exists
            (fun e2 -> Eval.hom_from_expansion Semantics.A_inj e2 g tuple)
            (eps_free_expansions q2))
        q1 q2 eps_free_ainj_expansions)

let test_prop_46_item3 =
  Testutil.qtest ~count:30
    "Prop 4.6 (3): a-inj containment via injective homs between merged expansions"
    gen_pair
    (fun (q1, q2) ->
      counterexample_free Semantics.A_inj
        (fun q2 f1 ->
          List.exists (fun f2 -> inj_hom_to_expansion f2 f1) (eps_free_ainj_expansions q2))
        q1 q2 eps_free_ainj_expansions)

(* ---------------- Prop 2.2: the semantics lattice ----------------

   Answer sets are monotone along the restrictiveness order
   q-inj ⊑ a-inj ⊑ st (and likewise for the trail variants, with
   node-injectivity implying edge-injectivity level by level):
   whenever Semantics.leq s1 s2 holds, every s1-answer is an
   s2-answer. *)

let test_prop_22_lattice =
  Testutil.qtest ~count:60
    "Prop 2.2: answers monotone along the semantics lattice"
    (QCheck2.Gen.pair
       (Testutil.gen_crpq ~max_atoms:2 ~max_vars:3 ~arity:1 ())
       (Testutil.gen_graph ~max_nodes:4 ()))
    (fun (q, g) ->
      List.for_all
        (fun v ->
          let holds s = Eval.check s q g [ v ] in
          List.for_all
            (fun s1 ->
              List.for_all
                (fun s2 ->
                  (not (Semantics.leq s1 s2))
                  || (not (holds s1))
                  || holds s2)
                Semantics.all)
            Semantics.all)
        (Graph.nodes g))

(* Strictness witnesses: each inclusion of the lattice is proper. *)

let rec pow r n = if n <= 1 then r else Regex.seq r (pow r (n - 1))

let atom_query ?(free = [ "x"; "y" ]) lang =
  Crpq.make ~free [ Crpq.atom "x" lang "y" ]

let test_st_strict () =
  (* a^4 on a 3-cycle: the only witnessing walk revisits an edge, so the
     answer exists under st but under neither injective variant *)
  let g = Generate.cycle [ "a"; "a"; "a" ] in
  let q = atom_query (pow (Regex.sym "a") 4) in
  Alcotest.(check bool) "st walk" true (Eval.check Semantics.St q g [ 0; 1 ]);
  Alcotest.(check bool) "no simple path" false
    (Eval.check Semantics.A_inj q g [ 0; 1 ]);
  Alcotest.(check bool) "no trail" false
    (Eval.check Semantics.A_edge_inj q g [ 0; 1 ])

let test_trail_strict_over_simple () =
  (* figure-eight: two triangles sharing node 0.  A trail of length 6
     goes around both loops (distinct edges, node 0 revisited), so the
     trail semantics accepts where the simple-path semantics cannot *)
  let g =
    Graph.make ~nnodes:5
      [
        (0, "a", 1); (1, "a", 2); (2, "a", 0);
        (0, "a", 3); (3, "a", 4); (4, "a", 0);
      ]
  in
  let q = atom_query (pow (Regex.sym "a") 6) in
  Alcotest.(check bool) "trail around both loops" true
    (Eval.check Semantics.A_edge_inj q g [ 0; 0 ]);
  Alcotest.(check bool) "no simple cycle of length 6" false
    (Eval.check Semantics.A_inj q g [ 0; 0 ]);
  Alcotest.(check bool) "st agrees with the trail" true
    (Eval.check Semantics.St q g [ 0; 0 ])

let test_qinj_strict_over_ainj () =
  (* x -a-> y, y -a-> z on the 2-cycle: atom-injectively satisfiable
     (x = z = 0), but no injective assignment of three variables to two
     nodes exists *)
  let g = Graph.make ~nnodes:2 [ (0, "a", 1); (1, "a", 0) ] in
  let q =
    Crpq.make ~free:[]
      [
        Crpq.atom "x" (Regex.sym "a") "y"; Crpq.atom "y" (Regex.sym "a") "z";
      ]
  in
  Alcotest.(check bool) "a-inj satisfiable" true
    (Eval.check Semantics.A_inj q g []);
  Alcotest.(check bool) "q-inj needs three nodes" false
    (Eval.check Semantics.Q_inj q g [])

let () =
  Alcotest.run "characterizations"
    [
      ( "section 4.1",
        [
          test_lemma_44;
          test_prop_42;
          test_prop_43;
          test_prop_46_item2;
          test_prop_46_item3;
        ] );
      ( "section 2: semantics lattice",
        [
          test_prop_22_lattice;
          Alcotest.test_case "st strictly above the injective variants"
            `Quick test_st_strict;
          Alcotest.test_case "trails strictly above simple paths" `Quick
            test_trail_strict_over_simple;
          Alcotest.test_case "q-inj strictly below a-inj" `Quick
            test_qinj_strict_over_ainj;
        ] );
    ]
