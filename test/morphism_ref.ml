(* The pre-CSP morphism solver, preserved verbatim (minus telemetry) as
   the differential-testing reference for [Graphdb.Morphism].

   This is the naive generate-and-test matcher the library shipped
   before the bitset/forward-checking rewrite: list-based candidate
   domains from label profiles, BFS variable order, and a [consistent]
   check that re-scans adjacent assignments on every candidate.  It is
   deliberately simple — every pruning rule is a directly-auditable
   [List.for_all] — which is what makes it a trustworthy oracle.

   One intentional divergence from the historical code: [fixed] pairs
   are validated before the [np = 0] early exit, matching the bug fix
   shipped with the rewrite (out-of-range fixed pairs used to be
   silently accepted when the pattern was empty). *)

type mapping = int array

exception Found

let label_profile g u =
  let outs = List.sort_uniq String.compare (List.map fst (Graph.out g u)) in
  let ins = List.sort_uniq String.compare (List.map fst (Graph.in_ g u)) in
  (outs, ins)

let subset l1 l2 = List.for_all (fun a -> List.mem a l2) l1

let iter ?(fixed = []) ?(distinct_pairs = []) ?(distinct_edge_groups = [])
    ?(injective = false) ~pattern ~target f =
  let np = Graph.nnodes pattern in
  let nt = Graph.nnodes target in
  (* edge-injectivity within groups is checked on complete mappings *)
  let groups_ok m =
    List.for_all
      (fun group ->
        let images =
          List.sort compare (List.map (fun (u, a, v) -> (m.(u), a, m.(v))) group)
        in
        List.length (List.sort_uniq compare images) = List.length images)
      distinct_edge_groups
  in
  let f m = if distinct_edge_groups = [] || groups_ok m then f m in
  let assignment = Array.make (max np 1) (-1) in
  let ok = ref true in
  List.iter
    (fun (x, u) ->
      if x < 0 || x >= np || u < 0 || u >= nt then ok := false
      else if assignment.(x) >= 0 && assignment.(x) <> u then ok := false
      else assignment.(x) <- u)
    fixed;
  if injective then begin
    (* fixed assignments must be injective themselves *)
    let imgs = List.filter (fun u -> u >= 0) (Array.to_list assignment) in
    if List.length (List.sort_uniq compare imgs) <> List.length imgs then
      ok := false
  end;
  if !ok then begin
    if np = 0 then f [||]
    else begin
      (* candidate domains from label profiles *)
      let tgt_profiles = Array.init nt (fun u -> label_profile target u) in
      let domains =
        Array.init np (fun x ->
            if assignment.(x) >= 0 then [ assignment.(x) ]
            else begin
              let pouts, pins = label_profile pattern x in
              List.filter
                (fun u ->
                  let touts, tins = tgt_profiles.(u) in
                  subset pouts touts && subset pins tins)
                (Graph.nodes target)
            end)
      in
      (* variable order: BFS from assigned/most-constrained, so that each
         new variable is adjacent to an assigned one when possible *)
      let order =
        let chosen = Array.make np false in
        let acc = ref [] in
        let add x =
          if not chosen.(x) then begin
            chosen.(x) <- true;
            acc := x :: !acc
          end
        in
        Array.iteri (fun x u -> if u >= 0 then add x) assignment;
        let frontier = Queue.create () in
        List.rev !acc |> List.iter (fun x -> Queue.add x frontier);
        let neighbours x =
          List.map snd (Graph.out pattern x) @ List.map snd (Graph.in_ pattern x)
        in
        let rec drain () =
          if Queue.is_empty frontier then begin
            (* start a new component: pick the unchosen node with the
               smallest domain *)
            let best = ref (-1) in
            for x = np - 1 downto 0 do
              if not chosen.(x) then
                if !best < 0
                   || List.length domains.(x) < List.length domains.(!best)
                then best := x
            done;
            if !best >= 0 then begin
              add !best;
              Queue.add !best frontier;
              drain ()
            end
          end
          else begin
            let x = Queue.pop frontier in
            List.iter
              (fun y ->
                if not chosen.(y) then begin
                  add y;
                  Queue.add y frontier
                end)
              (neighbours x);
            drain ()
          end
        in
        drain ();
        List.rev !acc
      in
      let used = Array.make nt 0 in
      Array.iter (fun u -> if u >= 0 then used.(u) <- used.(u) + 1) assignment;
      let distinct = Array.make np [] in
      let unsatisfiable = ref false in
      List.iter
        (fun (x, y) ->
          if x = y then unsatisfiable := true
          else if x >= 0 && x < np && y >= 0 && y < np then begin
            distinct.(x) <- y :: distinct.(x);
            distinct.(y) <- x :: distinct.(y)
          end)
        distinct_pairs;
      let consistent x u =
        (not (injective && used.(u) > 0 && assignment.(x) <> u))
        && List.for_all
             (fun y -> assignment.(y) < 0 || assignment.(y) <> u)
             distinct.(x)
        && List.for_all
             (fun (a, y) ->
               if y = x then Graph.mem_edge target u a u
               else assignment.(y) < 0 || Graph.mem_edge target u a assignment.(y))
             (Graph.out pattern x)
        && List.for_all
             (fun (a, y) ->
               (* self-loops already checked through the out-edges *)
               y = x
               || assignment.(y) < 0
               || Graph.mem_edge target assignment.(y) a u)
             (Graph.in_ pattern x)
      in
      (* check pre-fixed assignments are mutually consistent *)
      let prefixed_ok =
        Array.to_list assignment
        |> List.mapi (fun x u -> (x, u))
        |> List.for_all (fun (x, u) ->
               u < 0
               ||
               (assignment.(x) <- -1;
                used.(u) <- used.(u) - 1;
                let r = consistent x u in
                assignment.(x) <- u;
                used.(u) <- used.(u) + 1;
                r))
      in
      if prefixed_ok && not !unsatisfiable then begin
        let rec go = function
          | [] -> f (Array.copy assignment)
          | x :: rest ->
            if assignment.(x) >= 0 then go rest
            else
              List.iter
                (fun u ->
                  if consistent x u then begin
                    assignment.(x) <- u;
                    used.(u) <- used.(u) + 1;
                    go rest;
                    used.(u) <- used.(u) - 1;
                    assignment.(x) <- -1
                  end)
                domains.(x)
        in
        go order
      end
    end
  end

let find ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  let result = ref None in
  (try
     iter ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
       ~target (fun m ->
         result := Some m;
         raise Found)
   with Found -> ());
  !result

let exists ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  find ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern ~target
    ()
  <> None

let count ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern
    ~target () =
  let n = ref 0 in
  iter ?fixed ?distinct_pairs ?distinct_edge_groups ?injective ~pattern ~target
    (fun _ -> incr n);
  !n
