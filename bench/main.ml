(* Benchmark harness: regenerates every table and figure of the paper
   (experiments E1-E11 of DESIGN.md).  Each experiment prints a table in
   the shape of the paper artefact together with measured behaviour; a
   final Bechamel section reports statistically robust timings for the
   core operations.  Run with --quick for smaller workloads, or pass
   experiment ids (e.g. "fig1 thm52") to run a subset.

   Every experiment runs under a Guard deadline (--deadline-ms, default
   5 minutes) and records an outcome (ok | timeout | error); the results
   file is rewritten after each experiment, so a crash or timeout in
   experiment k never loses experiments 1..k-1. *)

let quick = ref false

let selected : string list ref = ref []

let deadline_ms = ref 300_000

let output_file = ref "BENCH_results.json"

let compare_file : string option ref = ref None

(* regression tolerance on deterministic work counters, percent *)
let tolerance = ref 30.0

(* wall-clock tolerance, percent; 0 = report-only (cross-machine noise
   must not fail a gate by default) *)
let wall_tolerance = ref 0.0

let profile_out : string option ref = ref None

let chrome_out : string option ref = ref None

let want name = !selected = [] || List.mem name !selected

let section name title =
  Format.printf "@.======================================================================@.";
  Format.printf "%s — %s@." name title;
  Format.printf "======================================================================@."

(* The single timing helper: every measurement in this harness goes
   through the Obs monotonic clock (CLOCK_MONOTONIC, installed in main),
   so timings cannot be skewed by wall-clock adjustments. *)
let time_it f =
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  (r, Obs.Clock.ns_to_s (Int64.sub (Obs.Clock.now_ns ()) t0))

let pp_ms ppf s = Format.fprintf ppf "%7.1fms" (1000.0 *. s)

(* Machine-readable results, written to the output file: one entry per
   experiment run (wall + CPU time, search-counter delta, outcome), plus
   one row per Figure-1 cell. *)
let results : Obs.Json.t list ref = ref []

let fig1_rows : Obs.Json.t list ref = ref []

let morphism_rows : Obs.Json.t list ref = ref []

let optimize_rows : Obs.Json.t list ref = ref []

let serve_rows : Obs.Json.t list ref = ref []

let bulk_rows : Obs.Json.t list ref = ref []

let bulk_scale_rows : Obs.Json.t list ref = ref []

(* Rewritten after every experiment: the file on disk always holds the
   completed prefix of the run, whatever happens to the rest. *)
let write_results () =
  let json =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.String "injcrpq-bench/1");
        ("quick", Obs.Json.Bool !quick);
        ("clock", Obs.Json.String (Obs.Clock.source_name ()));
        ("deadline_ms", Obs.Json.Int !deadline_ms);
        ("jobs", Obs.Json.Int (Parmap.default_jobs ()));
        ("cache", Obs.Json.Bool (Cache.is_enabled ()));
        ("experiments", Obs.Json.List (List.rev !results));
      ]
  in
  let oc = open_out !output_file in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Regression gate: --compare BASELINE.json                            *)
(* ------------------------------------------------------------------ *)

(* The gate compares deterministic work counters, not wall time: every
   experiment is seeded, so the amount of search work (candidates
   tried, expansions enumerated, checkpoints passed) is reproducible
   across machines, while wall_ns is not.  A counter that grew beyond
   --tolerance percent over a baseline with at least [min_gated_count]
   occurrences fails the gate; wall_ns is reported, and only gated when
   --wall-tolerance is set (same-machine runs). *)

let gated_prefixes =
  [
    "morphism.";
    "containment.";
    "eval.";
    "qinj.";
    "f7.";
    "path_search.";
    "bulk.";
    "nfa.";
    "expansion.";
    "analysis.";
    "guard.checkpoints";
  ]

let min_gated_count = 50

(* bechamel runs as many iterations as fit its time quota, so its work
   counters measure machine speed, not algorithmic work: report, never
   gate.  serve drives a live daemon, where scheduling decides how much
   decider work lands inside the measurement window *)
let ungated_experiments = [ "bechamel"; "serve" ]

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* name -> (outcome, wall_ns, counters) from a bench results document *)
let experiment_index json =
  let experiments =
    Option.bind (Obs.Json.member "experiments" json) Obs.Json.to_list
    |> Option.value ~default:[]
  in
  List.filter_map
    (fun e ->
      match
        ( Obs.Json.member "name" e,
          Obs.Json.member "outcome" e,
          Option.bind (Obs.Json.member "wall_ns" e) Obs.Json.to_int,
          Obs.Json.member "metrics" e )
      with
      | Some (Obs.Json.String name), Some (Obs.Json.String outcome), Some wall, Some metrics ->
        let counters =
          match Obs.Metrics.of_json metrics with
          | Ok snapshot ->
            List.filter_map
              (fun (n, v) ->
                match v with Obs.Metrics.Counter c -> Some (n, c) | _ -> None)
              snapshot
          | Error _ -> []
        in
        Some (name, (outcome, wall, counters))
      | _ -> None)
    experiments

let pct ratio = 100.0 *. (ratio -. 1.0)

let run_compare baseline_file =
  let baseline =
    match open_in baseline_file with
    | exception Sys_error msg ->
      Format.eprintf "bench: cannot open baseline: %s@." msg;
      exit 2
    | ic ->
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Obs.Json.parse contents with
      | Ok j -> j
      | Error e ->
        Format.eprintf "bench: baseline %s does not parse: %s@." baseline_file e;
        exit 2)
  in
  let shape_mismatch =
    (* a baseline recorded at another size is a shape mismatch, not a
       regression: report and skip the gate rather than failing it *)
    match Obs.Json.member "quick" baseline with
    | Some (Obs.Json.Bool bq) when bq <> !quick ->
      Format.eprintf
        "bench: baseline was recorded with quick=%b but this run has \
         quick=%b; work counters are not comparable — gate skipped@."
        bq !quick;
      true
    | _ -> false
  in
  let base_idx = experiment_index baseline in
  let current =
    experiment_index
      (Obs.Json.Obj [ ("experiments", Obs.Json.List (List.rev !results)) ])
  in
  section "GATE" (Printf.sprintf "regression gate vs %s" baseline_file);
  Format.printf "work-counter tolerance: %.0f%%; wall tolerance: %s@."
    !tolerance
    (if !wall_tolerance > 0.0 then Printf.sprintf "%.0f%%" !wall_tolerance
     else "report-only");
  if shape_mismatch then
    Format.printf "gate: skipped (baseline shape mismatch, see above)@."
  else begin
  let regressions = ref [] in
  let regress fmt = Format.kasprintf (fun s -> regressions := s :: !regressions) fmt in
  let compared = ref 0 in
  List.iter
    (fun (name, (outcome, wall, counters)) ->
      match List.assoc_opt name base_idx with
      | None -> Format.printf "%-12s (not in baseline, skipped)@." name
      | Some (base_outcome, base_wall, base_counters) ->
        let ungated = List.mem name ungated_experiments in
        if not ungated then begin
          incr compared;
          if base_outcome = "ok" && outcome <> "ok" then
            regress "%s: outcome degraded from ok to %s" name outcome
        end;
        let wall_ratio = float_of_int wall /. float_of_int (max 1 base_wall) in
        if (not ungated) && !wall_tolerance > 0.0 && pct wall_ratio > !wall_tolerance
        then
          regress "%s: wall time %+.0f%% (%.1fms -> %.1fms)" name
            (pct wall_ratio)
            (float_of_int base_wall /. 1e6)
            (float_of_int wall /. 1e6);
        let worst = ref ("", 0.0) in
        let gated = ref 0 in
        List.iter
          (fun (cname, base_count) ->
            if
              base_count >= min_gated_count
              && List.exists (fun p -> has_prefix p cname) gated_prefixes
            then
              match List.assoc_opt cname counters with
              | None ->
                (* a counter the baseline had but this run lacks (renamed
                   or removed instrumentation): shape change, not gated *)
                Format.printf
                  "%-12s   counter %s only in baseline, skipped@." name cname
              | Some count ->
                incr gated;
                let ratio = float_of_int count /. float_of_int base_count in
                if fst !worst = "" || ratio > snd !worst then
                  worst := (cname, ratio);
                if (not ungated) && pct ratio > !tolerance then
                  regress "%s: %s %+.0f%% (%d -> %d)" name cname (pct ratio)
                    base_count count)
          base_counters;
        (* counters of this run absent from the baseline: new
           instrumentation has no reference value, so report-only *)
        List.iter
          (fun (cname, count) ->
            if
              count >= min_gated_count
              && List.exists (fun p -> has_prefix p cname) gated_prefixes
              && not (List.mem_assoc cname base_counters)
            then
              Format.printf "%-12s   counter %s new (%d), not in baseline@."
                name cname count)
          counters;
        let worst_txt =
          match !worst with
          | "", _ -> "no gated counters"
          | cname, r ->
            Printf.sprintf "%d gated counter(s), worst %s %+.0f%%" !gated cname
              (pct r)
        in
        Format.printf "%-12s %-8s wall %+6.0f%%  %s%s@." name outcome
          (pct wall_ratio) worst_txt
          (if ungated then "  (ungated: time-quota workload)" else ""))
    current;
  (* experiments the baseline has but this run did not produce (renamed
     family, or a subset run): report-only, never a failure *)
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name current) then
        Format.printf "%-12s (baseline-only, skipped)@." name)
    base_idx;
  if !compared = 0 then
    Format.eprintf
      "bench: no experiment of this run appears in the baseline — nothing \
       was gated@.";
  match List.rev !regressions with
  | [] ->
    Format.printf "@.gate: no regressions across %d experiment(s)@." !compared
  | rs ->
    Format.printf "@.gate: %d regression(s):@." (List.length rs);
    List.iter (fun r -> Format.printf "  REGRESSION %s@." r) rs;
    exit 1
  end

let run_experiment name f =
  let before = Obs.Metrics.snapshot () in
  let cpu0 = Obs.Clock.cpu_ns () in
  let t0 = Obs.Clock.now_ns () in
  let guard = Guard.create ~deadline_ms:!deadline_ms () in
  let outcome =
    (* the bench.<name> checkpoint sits outside any decider boundary, so
       chaos can degrade a whole experiment (crash-safety tests) *)
    match
      Guard.run ~guard (fun () ->
          Guard.checkpoint ("bench." ^ name);
          f ())
    with
    | Ok () -> begin
      match Guard.last_trip guard with
      | Some ({ Guard.reason = Guard.Deadline_exceeded _ | Guard.Fuel_exhausted _; _ } as trip) ->
        (* the deadline elapsed mid-experiment; the deciders absorbed the
           trips and degraded cell by cell *)
        [
          ("outcome", Obs.Json.String "timeout");
          ("detail", Obs.Json.String (Guard.trip_to_string trip));
        ]
      | _ -> [ ("outcome", Obs.Json.String "ok") ]
    end
    | Error trip ->
      Format.printf "@.[%s] stopped: %s@." name (Guard.trip_to_string trip);
      [
        ("outcome", Obs.Json.String "timeout");
        ("detail", Obs.Json.String (Guard.trip_to_string trip));
      ]
    | exception e ->
      Format.printf "@.[%s] failed: %s@." name (Printexc.to_string e);
      [
        ("outcome", Obs.Json.String "error");
        ("detail", Obs.Json.String (Printexc.to_string e));
      ]
  in
  let wall_ns = Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) t0) in
  let cpu_ns = Int64.to_int (Int64.sub (Obs.Clock.cpu_ns ()) cpu0) in
  let delta = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
  let fields =
    [
      ("name", Obs.Json.String name);
      ("wall_ns", Obs.Json.Int wall_ns);
      ("cpu_ns", Obs.Json.Int cpu_ns);
      ("metrics", Obs.Metrics.to_json delta);
    ]
    @ outcome
  in
  let fields =
    if String.equal name "fig1" && !fig1_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !fig1_rows)) ]
    else if String.equal name "morphism" && !morphism_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !morphism_rows)) ]
    else if String.equal name "optimize" && !optimize_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !optimize_rows)) ]
    else if String.equal name "serve" && !serve_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !serve_rows)) ]
    else if String.equal name "bulk" && !bulk_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !bulk_rows)) ]
    else if String.equal name "bulk_scale" && !bulk_scale_rows <> [] then
      fields @ [ ("cells", Obs.Json.List (List.rev !bulk_scale_rows)) ]
    else fields
  in
  results := Obs.Json.Obj fields :: !results;
  write_results ()

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the complexity grid, empirically                     *)
(* ------------------------------------------------------------------ *)

let fig1_paper_complexity cell sem =
  match cell, sem with
  | ("CQ/CQ" | "CQ/CRPQfin" | "CQ/CRPQ"), Semantics.St -> "NP-c"
  | ("CQ/CQ" | "CQ/CRPQfin" | "CQ/CRPQ"), Semantics.Q_inj -> "NP-c"
  | "CQ/CQ", Semantics.A_inj -> "NP-c"
  | ("CQ/CRPQfin" | "CQ/CRPQ"), Semantics.A_inj -> "Pi2p-c"
  | ("CRPQfin/CQ" | "CRPQfin/CRPQfin" | "CRPQfin/CRPQ"), _ -> "Pi2p-c"
  | "CRPQ/CQ", _ -> "Pi2p-c"
  | "CRPQ/CRPQfin", Semantics.St -> "PSPACE-c"
  | "CRPQ/CRPQfin", Semantics.Q_inj -> "PSPACE-c"
  | "CRPQ/CRPQfin", Semantics.A_inj -> "undecidable"
  | "CRPQ/CRPQ", Semantics.St -> "ExpSpace-c"
  | "CRPQ/CRPQ", Semantics.Q_inj -> "PSPACE-c"
  | "CRPQ/CRPQ", Semantics.A_inj -> "undecidable"
  | _ -> "?"

let run_fig1 () =
  section "E1" "Figure 1: containment complexity grid (verdicts + decider timing)";
  let per_cell = if !quick then 2 else 4 in
  let cells = Suite.fig1_cells ~seed:42 ~per_cell in
  Format.printf "%-18s %-7s %-12s %-36s %3s %3s %3s %10s@." "cell" "sem"
    "paper" "decider" "C" "N" "?" "time";
  List.iter
    (fun (cell, sem, _, _, pairs) ->
      let contained = ref 0 and not_contained = ref 0 and unknown = ref 0 in
      let timeouts = ref 0 in
      let strategy = ref "" in
      let before = Obs.Metrics.snapshot () in
      let _, dt =
        time_it (fun () ->
            (* the pairs of a cell are independent decider runs: fan them
               across domains under --jobs (order-preserving, so the
               verdict counts cannot change with the job count) *)
            let verdicts =
              Parmap.map
                (fun (q1, q2) ->
                  match Containment.decide ~bound:3 sem q1 q2 with
                  | Containment.Contained -> `C
                  | Containment.Not_contained _ -> `N
                  | Containment.Unknown (Containment.Resource_exhausted _) ->
                    `T
                  | Containment.Unknown _ -> `U
                  | exception _ -> `U)
                pairs
            in
            (match List.rev pairs with
            | (q1, q2) :: _ -> strategy := Containment.strategy_name sem q1 q2
            | [] -> ());
            List.iter
              (function
                | `C -> incr contained
                | `N -> incr not_contained
                | `T ->
                  incr unknown;
                  incr timeouts
                | `U -> incr unknown)
              verdicts)
      in
      let delta = Obs.Metrics.diff before (Obs.Metrics.snapshot ()) in
      fig1_rows :=
        Obs.Json.Obj
          [
            ("cell", Obs.Json.String cell);
            ("sem", Obs.Json.String (Semantics.to_string sem));
            ("paper", Obs.Json.String (fig1_paper_complexity cell sem));
            ("decider", Obs.Json.String !strategy);
            ("contained", Obs.Json.Int !contained);
            ("not_contained", Obs.Json.Int !not_contained);
            ("unknown", Obs.Json.Int !unknown);
            ("timeouts", Obs.Json.Int !timeouts);
            ( "outcome",
              Obs.Json.String (if !timeouts > 0 then "timeout" else "ok") );
            ("wall_ns", Obs.Json.Int (int_of_float (dt *. 1e9)));
            ("metrics", Obs.Metrics.to_json delta);
          ]
        :: !fig1_rows;
      Format.printf "%-18s %-7s %-12s %-36s %3d %3d %3d %a@." cell
        (Semantics.to_string sem)
        (fig1_paper_complexity cell sem)
        !strategy !contained !not_contained !unknown pp_ms dt)
    cells;
  Format.printf
    "@.Shape check: exact deciders (homomorphisms, finite enumeration, regular@.\
     inclusion, Prop F.7 windows, Thm 5.1 abstractions) cover every cell@.\
     except the ones Figure 1 proves PSPACE-or-worse under st with infinite@.\
     right languages or undecidable under a-inj, where bounded search@.\
     reports '?' when exhausted.@."

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 / Example 2.1                                          *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  section "E2" "Figure 2 / Example 2.1: the three semantics separate";
  let q = Paper_examples.example_21_query in
  Format.printf "query: %s@.@." (Crpq.to_string q);
  let row name g t =
    Format.printf "%-28s st=%-5b a-inj=%-5b q-inj=%-5b@." name
      (Eval.check Semantics.St q g t)
      (Eval.check Semantics.A_inj q g t)
      (Eval.check Semantics.Q_inj q g t)
  in
  row "G, (u,w)   [paper: T T F]" Paper_examples.example_21_g
    Paper_examples.example_21_g_tuple;
  row "G', (u',v') [paper: T F F]" Paper_examples.example_21_g'
    Paper_examples.example_21_g'_tuple_st;
  row "G', (u,w)  [paper: T T F]" Paper_examples.example_21_g'
    Paper_examples.example_21_g'_tuple_ainj;
  Format.printf "st = a-inj on G (paper: yes): %b@."
    (Eval.eval Semantics.St q Paper_examples.example_21_g
    = Eval.eval Semantics.A_inj q Paper_examples.example_21_g)

(* ------------------------------------------------------------------ *)
(* E3: Remark 2.1 — hierarchy over random instances                    *)
(* ------------------------------------------------------------------ *)

let run_hierarchy () =
  section "E3" "Remark 2.1: q-inj ⊆ a-inj ⊆ st over random instances";
  let n = if !quick then 30 else 120 in
  let rng = Random.State.make [| 5 |] in
  let holds = ref 0 and strict_ai = ref 0 and strict_qi = ref 0 in
  for _ = 1 to n do
    let q =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:1
        ~cls:Crpq.Class_crpq ()
    in
    let g = Generate.gnp ~rng ~nodes:4 ~labels:[ "a"; "b" ] ~p:0.3 in
    let st = Eval.eval Semantics.St q g in
    let ai = Eval.eval Semantics.A_inj q g in
    let qi = Eval.eval Semantics.Q_inj q g in
    let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1 in
    if subset qi ai && subset ai st then incr holds;
    if List.length ai < List.length st then incr strict_ai;
    if List.length qi < List.length ai then incr strict_qi
  done;
  Format.printf "instances: %d; hierarchy holds: %d (must be all)@." n !holds;
  Format.printf "strict a-inj ⊂ st: %d; strict q-inj ⊂ a-inj: %d@." !strict_ai
    !strict_qi

(* ------------------------------------------------------------------ *)
(* E4: Example 4.7                                                     *)
(* ------------------------------------------------------------------ *)

let run_ex47 () =
  section "E4" "Example 4.7: containment relations are incomparable";
  Format.printf "%-12s %-7s %-9s %-9s@." "pair" "sem" "paper" "measured";
  List.iter
    (fun (name, sem, q1, q2, expected) ->
      let v = Containment.decide sem q1 q2 in
      let measured =
        match Containment.verdict_bool v with
        | Some b -> string_of_bool b
        | None -> "?"
      in
      Format.printf "%-12s %-7s %-9b %-9s@." name (Semantics.to_string sem)
        expected measured)
    Paper_examples.example_47_expectations

(* ------------------------------------------------------------------ *)
(* E5: Section 2.2 expansions                                          *)
(* ------------------------------------------------------------------ *)

let run_expansions () =
  section "E5" "Section 2.2: expansions of the running query";
  Format.printf "E1 (profile ab, ε): %s@."
    (Cq.to_string Paper_examples.example_22_e1.Expansion.cq);
  Format.printf "E2 (profile ab, c): %s@."
    (Cq.to_string Paper_examples.example_22_e2.Expansion.cq);
  let q = Paper_examples.example_21_query in
  List.iter
    (fun len ->
      Format.printf "expansions with atom words ≤ %d: %d@." len
        (List.length (Expansion.expansions ~max_len:len q)))
    [ 2; 4; 6 ]

(* ------------------------------------------------------------------ *)
(* E6: Theorem 5.1 — the abstraction algorithm                          *)
(* ------------------------------------------------------------------ *)

let run_thm51 () =
  section "E6"
    "Theorem 5.1: q-inj containment via abstractions (scaling + agreement)";
  let sizes = if !quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  Format.printf "%-8s %-10s %-12s %-14s %-10s@." "atoms" "verdicts"
    "morph.types" "abstractions" "time";
  List.iter
    (fun (natoms, pairs) ->
      let types = ref 0 and abstractions = ref 0 in
      let verdicts = ref [] in
      let _, dt =
        time_it (fun () ->
            List.iter
              (fun (q1, q2) ->
                match Containment_qinj.decide_with_stats q1 q2 with
                | Containment_qinj.Qinj_contained, st ->
                  types := !types + st.Containment_qinj.morphism_types;
                  abstractions :=
                    !abstractions + st.Containment_qinj.abstractions_checked;
                  verdicts := "C" :: !verdicts
                | Containment_qinj.Qinj_not_contained _, st ->
                  types := !types + st.Containment_qinj.morphism_types;
                  abstractions :=
                    !abstractions + st.Containment_qinj.abstractions_checked;
                  verdicts := "N" :: !verdicts
                | exception Containment_qinj.Unsupported _ ->
                  verdicts := "!" :: !verdicts)
              pairs)
      in
      Format.printf "%-8d %-10s %-12d %-14d %a@." natoms
        (String.concat "" (List.rev !verdicts))
        !types !abstractions pp_ms dt)
    (Suite.qinj_scaling ~seed:13 ~sizes);
  (* agreement with the bounded oracle on a fresh batch *)
  let rng = Random.State.make [| 77 |] in
  let n = if !quick then 15 else 40 in
  let agree = ref 0 and total = ref 0 in
  for _ = 1 to n do
    let q1 =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:0
        ~cls:Crpq.Class_crpq ()
    in
    let q2 =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:0
        ~cls:Crpq.Class_crpq ()
    in
    match Containment_qinj.decide q1 q2 with
    | exception Containment_qinj.Unsupported _ -> ()
    | v -> begin
      incr total;
      match v, Containment.bounded Semantics.Q_inj ~max_len:4 q1 q2 with
      | Containment_qinj.Qinj_contained, (Containment.Unknown _ | Containment.Contained)
      | Containment_qinj.Qinj_not_contained _, _ ->
        (* counterexamples are re-verified internally *)
        incr agree
      | Containment_qinj.Qinj_contained, Containment.Not_contained _ -> ()
    end
  done;
  Format.printf "@.agreement with bounded oracle: %d/%d@." !agree !total

(* ------------------------------------------------------------------ *)
(* E7: Theorem 5.2 — PCP reduction                                     *)
(* ------------------------------------------------------------------ *)

let run_thm52 () =
  section "E7" "Theorem 5.2: PCP ↦ a-inj containment (Figures 4, 5, 11, 12)";
  Format.printf "%-18s %-10s %-12s %-24s %-10s@." "instance" "solvable"
    "candidate" "well-formed F defeats Q2" "time";
  List.iter
    (fun (name, inst, sol) ->
      match sol with
      | Some seq ->
        let (ce, real), dt =
          time_it (fun () -> Pcp_to_ainj.verify_candidate inst seq)
        in
        Format.printf "%-18s %-10b %-12s %-24b %a@." name real
          (String.concat "," (List.map string_of_int seq))
          ce pp_ms dt
      | None ->
        (* no solution: candidate expansions never defeat Q2 *)
        let enc = Pcp_to_ainj.encode inst in
        let any_ce, dt =
          time_it (fun () ->
              List.exists
                (fun seq ->
                  Pcp_to_ainj.is_counterexample enc
                    (Pcp_to_ainj.well_formed_expansion enc seq))
                [ [ 1 ]; [ 1; 1 ] ])
        in
        Format.printf "%-18s %-10b %-12s %-24b %a@." name false "sampled" any_ce
          pp_ms dt)
    Suite.pcp_instances;
  let enc = Pcp_to_ainj.encode Pcp.solvable_small in
  Format.printf "@.ill-formed controls (expected: Q2 maps, i.e. NOT counterexamples):@.";
  Format.printf "  unmerged:   counterexample=%b@."
    (Pcp_to_ainj.is_counterexample enc (Pcp_to_ainj.unmerged_expansion enc [ 1; 2 ]));
  Format.printf "  mismatched: counterexample=%b@."
    (Pcp_to_ainj.is_counterexample enc
       (Pcp_to_ainj.mismatched_expansion enc [ 1; 2 ] [ 2; 1 ]));
  Format.printf "  non-solution candidate: counterexample=%b@."
    (Pcp_to_ainj.is_counterexample enc
       (Pcp_to_ainj.well_formed_expansion enc [ 1; 1 ]));
  Format.printf "  Claim D.3 union simulation agrees: %b@."
    (Pcp_to_ainj.union_agrees enc (Pcp_to_ainj.well_formed_expansion enc [ 1; 2 ]))

(* ------------------------------------------------------------------ *)
(* E8: Theorem 6.1 — GCP₂ reduction                                    *)
(* ------------------------------------------------------------------ *)

let run_thm61 () =
  section "E8" "Theorem 6.1: GCP₂ ↦ q-inj containment (Figure 6)";
  Format.printf "%-10s %-16s %-18s %-10s@." "instance" "GCP2 (brute)"
    "Q1 ⊄ Q2 (queries)" "time";
  List.iter
    (fun (name, inst) ->
      let (via_q, via_b), dt = time_it (fun () -> Gcp_to_qinj.verify inst) in
      Format.printf "%-10s %-16b %-18b %a%s@." name via_b via_q pp_ms dt
        (if via_q = via_b then "" else "   MISMATCH"))
    Suite.gcp_instances

(* ------------------------------------------------------------------ *)
(* E9: Theorem 6.2 — QBF reduction                                     *)
(* ------------------------------------------------------------------ *)

let run_thm62 () =
  section "E9" "Theorem 6.2: ∀∃-QBF ↦ a-inj containment (Figures 7, 13)";
  Format.printf "%-16s %-14s %-18s %-10s@." "instance" "valid (brute)"
    "Q1 ⊆ Q2 (queries)" "time";
  List.iter
    (fun (name, inst) ->
      let (via_q, via_b), dt = time_it (fun () -> Qbf_to_ainj.verify inst) in
      Format.printf "%-16s %-14b %-18b %a%s@." name via_b via_q pp_ms dt
        (if via_q = via_b then "" else "   MISMATCH"))
    (Suite.qbf_instances ~seed:21)

(* ------------------------------------------------------------------ *)
(* E10: Props 3.1/3.2 — evaluation complexity                          *)
(* ------------------------------------------------------------------ *)

let run_eval_bench () =
  section "E10"
    "Props 3.1/3.2: evaluation — standard (poly) vs injective (NP witness search)";
  let sizes = if !quick then [ 6; 10 ] else [ 6; 10; 14; 18 ] in
  let q = Crpq.parse "Q(x, y) :- x -[(aa)+]-> y" in
  Format.printf "lollipop family, query x -[(aa)+]-> y:@.";
  Format.printf "%-8s %-12s %-12s %-12s@." "nodes" "st" "a-inj" "q-inj";
  List.iter
    (fun (n, g) ->
      let t sem = snd (time_it (fun () -> ignore (Eval.eval sem q g))) in
      Format.printf "%-8d %a %a %a@." n pp_ms (t Semantics.St) pp_ms
        (t Semantics.A_inj) pp_ms (t Semantics.Q_inj))
    (Suite.hard_simple_path ~sizes);
  let _, q, graphs = Suite.eval_scaling ~seed:3 ~sizes in
  Format.printf "@.sparse random graphs, query %s:@." (Crpq.to_string q);
  Format.printf "%-8s %-12s %-12s %-12s@." "nodes" "st" "a-inj" "q-inj";
  List.iter
    (fun g ->
      let t sem = snd (time_it (fun () -> ignore (Eval.eval sem q g))) in
      Format.printf "%-8d %a %a %a@." (Graph.nnodes g) pp_ms (t Semantics.St)
        pp_ms (t Semantics.A_inj) pp_ms (t Semantics.Q_inj))
    graphs;
  (* Wikidata-flavoured property-path queries (the paper's §1 motivation) *)
  let entities = if !quick then 15 else 30 in
  let kg, queries = Suite.knowledge_graph ~seed:8 ~entities in
  Format.printf "@.knowledge graph (%d entities, %d facts):@." (Graph.nnodes kg)
    (Graph.nedges kg);
  Format.printf "%-30s %8s %12s %12s %12s@." "query" "answers" "st" "a-inj"
    "q-inj";
  List.iter
    (fun (name, q) ->
      let t sem = snd (time_it (fun () -> ignore (Eval.eval sem q kg))) in
      let answers = List.length (Eval.eval Semantics.St q kg) in
      Format.printf "%-30s %8d %a %a %a@." name answers pp_ms (t Semantics.St)
        pp_ms (t Semantics.A_inj) pp_ms (t Semantics.Q_inj))
    queries;
  (* the subgraph-isomorphism lower-bound family (Prop 3.1) *)
  let rng = Random.State.make [| 9 |] in
  let n = if !quick then 10 else 25 in
  let ok = ref 0 in
  for _ = 1 to n do
    let q = Qgen.random_cq ~rng ~labels:[ "a" ] ~nvars:3 ~natoms:3 ~arity:0 () in
    let g = Generate.gnp ~rng ~nodes:4 ~labels:[ "a" ] ~p:0.4 in
    let s, qi, ai = Subiso_to_eval.verify q g in
    if s = qi && qi = ai then incr ok
  done;
  Format.printf "@.Prop 3.1 equivalences (subiso = q-inj = saturated a-inj): %d/%d@."
    !ok n

(* ------------------------------------------------------------------ *)
(* E11: Section 7 — trail semantics                                    *)
(* ------------------------------------------------------------------ *)

let run_trails () =
  section "E11" "Section 7: trail (edge-injective) semantics";
  let g =
    Graph.make ~nnodes:4 [ (0, "a", 1); (1, "a", 2); (2, "a", 1); (1, "a", 3) ]
  in
  let q = Crpq.parse "Q(x, y) :- x -[aaaa]-> y" in
  Format.printf "figure-eight graph, x -[aaaa]-> y, tuple (0,3):@.";
  List.iter
    (fun sem ->
      Format.printf "  %-12s %b@." (Semantics.to_string sem)
        (Eval.check sem q g [ 0; 3 ]))
    [ Semantics.St; Semantics.A_edge_inj; Semantics.A_inj ];
  let rng = Random.State.make [| 31 |] in
  let n = if !quick then 20 else 80 in
  let holds = ref 0 and node_stricter = ref 0 in
  for _ = 1 to n do
    let q =
      Qgen.random_crpq ~rng ~labels:[ "a"; "b" ] ~nvars:3 ~natoms:2 ~arity:1
        ~cls:Crpq.Class_crpq ()
    in
    let g = Generate.gnp ~rng ~nodes:4 ~labels:[ "a"; "b" ] ~p:0.35 in
    let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1 in
    let ai = Eval.eval Semantics.A_inj q g in
    let ae = Eval.eval Semantics.A_edge_inj q g in
    let qi = Eval.eval Semantics.Q_inj q g in
    let qe = Eval.eval Semantics.Q_edge_inj q g in
    let st = Eval.eval Semantics.St q g in
    if subset qe ae && subset ae st && subset qi qe && subset ai ae then incr holds;
    if List.length ai < List.length ae then incr node_stricter
  done;
  Format.printf "@.random instances: %d; edge hierarchy holds: %d; node ⊊ edge: %d@."
    n !holds !node_stricter

(* ------------------------------------------------------------------ *)
(* E12: ablations — design choices measured                            *)
(* ------------------------------------------------------------------ *)

let run_ablations () =
  section "E12" "Ablations: abstraction vs bounded search; direct vs expansion eval";
  (* (a) the Theorem 5.1 algorithm vs the naive bounded search on
     CONTAINED pairs: the bounded search can never prove these, and its
     cost explodes with the bound, while the abstraction algorithm is
     exact and fast *)
  let pairs =
    [
      ("a+ ⊆ a*", "x -[a+]-> y", "x -[a*]-> y");
      ("(ab)+ ⊆ (a|b)+", "x -[(ab)+]-> y", "x -[(a|b)+]-> y");
      ("chain ⊆ concat", "x -[a]-> y, y -[b+]-> z", "x -[ab+]-> z");
    ]
  in
  Format.printf "%-18s %-14s %-14s %-14s %-14s@." "pair" "abstraction"
    "bounded(3)" "bounded(5)" "bounded(7)";
  List.iter
    (fun (name, s1, s2) ->
      let q1 = Crpq.parse s1 and q2 = Crpq.parse s2 in
      let t_abs =
        snd (time_it (fun () -> ignore (Containment_qinj.decide q1 q2)))
      in
      let t_bound b =
        snd
          (time_it (fun () ->
               ignore (Containment.bounded Semantics.Q_inj ~max_len:b q1 q2)))
      in
      Format.printf "%-18s %a (exact) %a %a %a (all '?')@." name pp_ms t_abs
        pp_ms (t_bound 3) pp_ms (t_bound 5) pp_ms (t_bound 7))
    pairs;
  (* (b) direct evaluators vs the expansion-based reference (Props
     2.2/2.3): the direct engines avoid materializing the expansion
     space *)
  let q = Paper_examples.example_21_query in
  let g = Paper_examples.example_21_g' in
  Format.printf "@.%-10s %-14s %-18s@." "semantics" "direct" "via expansions";
  List.iter
    (fun sem ->
      let tuple = Paper_examples.example_21_g'_tuple_st in
      let t_direct = snd (time_it (fun () -> ignore (Eval.check sem q g tuple))) in
      let t_exp =
        snd (time_it (fun () -> ignore (Eval.check_via_expansions sem q g tuple)))
      in
      Format.printf "%-10s %a %a@." (Semantics.to_string sem) pp_ms t_direct
        pp_ms t_exp)
    Semantics.node_semantics

(* ------------------------------------------------------------------ *)
(* E13: morphism engine — the NP witness search, isolated              *)
(* ------------------------------------------------------------------ *)

(* Every Figure-1 NP cell bottoms out in [Morphism]: finding a (possibly
   injective) homomorphism from an expansion into a graph (Props 2.2,
   2.3, 4.2).  This family scales pattern size × target size × the four
   injectivity regimes and records candidates-tried / backtracks per
   row, so solver regressions (or improvements) are a measured artefact
   rather than a claim.  Workloads are seeded per row: the counter
   series is comparable across solver generations. *)

let run_morphism () =
  section "E13" "Morphism engine: witness-search scaling (candidates / backtracks)";
  let labels = [ "a"; "b" ] in
  let pattern_of kind np seed =
    let word n = List.init n (fun i -> if i mod 2 = 0 then "a" else "b") in
    match kind with
    | "path" -> Generate.line (word (np - 1))
    | "cycle" -> Generate.cycle (word np)
    | "random" ->
      let rng = Random.State.make [| 0xBEEF; np; seed |] in
      Generate.gnp ~rng ~nodes:np ~labels ~p:0.35
    | _ -> assert false
  in
  let target_of nt =
    (* sparse: expected per-label out-degree ~3, independent of nt *)
    let rng = Random.State.make [| 0xCAFE; nt |] in
    Generate.gnp ~rng ~nodes:nt ~labels ~p:(3.0 /. float_of_int nt)
  in
  let m_cand = Obs.Metrics.counter "morphism.candidates_tried" in
  let m_back = Obs.Metrics.counter "morphism.backtracks" in
  let modes pattern =
    [
      ("hom", fun target -> Morphism.count ~pattern ~target ());
      ("inj", fun target -> Morphism.count ~injective:true ~pattern ~target ());
      ( "noncontract",
        fun target ->
          let distinct_pairs =
            List.filter_map
              (fun (u, _, v) -> if u <> v then Some (u, v) else None)
              (Graph.edges pattern)
          in
          Morphism.count ~distinct_pairs ~pattern ~target () );
      ( "edge-inj",
        fun target ->
          Morphism.count
            ~distinct_edge_groups:[ Graph.edges pattern ]
            ~pattern ~target () );
    ]
  in
  let kinds = [ "path"; "cycle"; "random" ] in
  let sizes =
    if !quick then [ (4, 16); (4, 32); (6, 32) ]
    else [ (4, 32); (6, 64); (8, 128) ]
  in
  Format.printf "%-8s %-4s %-5s %-12s %10s %12s %12s %10s@." "pattern" "np"
    "nt" "mode" "solutions" "candidates" "backtracks" "time";
  let total_cand = ref 0 and total_back = ref 0 in
  List.iter
    (fun kind ->
      List.iter
        (fun (np, nt) ->
          let pattern = pattern_of kind np 1 in
          let target = target_of nt in
          List.iter
            (fun (mode, count) ->
              let c0 = Obs.Metrics.counter_value m_cand in
              let b0 = Obs.Metrics.counter_value m_back in
              let solutions, dt = time_it (fun () -> count target) in
              let cand = Obs.Metrics.counter_value m_cand - c0 in
              let back = Obs.Metrics.counter_value m_back - b0 in
              total_cand := !total_cand + cand;
              total_back := !total_back + back;
              morphism_rows :=
                Obs.Json.Obj
                  [
                    ("pattern", Obs.Json.String kind);
                    ("np", Obs.Json.Int np);
                    ("nt", Obs.Json.Int nt);
                    ("mode", Obs.Json.String mode);
                    ("solutions", Obs.Json.Int solutions);
                    ("candidates", Obs.Json.Int cand);
                    ("backtracks", Obs.Json.Int back);
                    ("wall_ns", Obs.Json.Int (int_of_float (dt *. 1e9)));
                  ]
                :: !morphism_rows;
              Format.printf "%-8s %-4d %-5d %-12s %10d %12d %12d %a@." kind np
                nt mode solutions cand back pp_ms dt)
            (modes pattern))
        sizes)
    kinds;
  Format.printf "@.total: candidates=%d backtracks=%d@." !total_cand !total_back

(* ------------------------------------------------------------------ *)
(* E16: bulk bit-matrix engine vs pointwise product BFS                 *)
(* ------------------------------------------------------------------ *)

(* Every cell computes the full standard-semantics atom relation three
   ways — pointwise Path_search, bulk multiple-source frontier BFS, and
   (while the product space stays small) bulk all-pairs closure — and
   checks the relations cell-for-cell before timing is reported, so the
   bench doubles as a large-graph differential test.  The crossover
   claim CI asserts: on the largest cell (≥ 10⁵ edges) the bulk engine
   must beat the pointwise BFS. *)
let run_bulk () =
  Format.printf
    "@.E16: bulk bit-matrix RPQ engine vs pointwise product BFS@.@.";
  let m_sweeps = Obs.Metrics.counter "bulk.sweeps" in
  let m_frontier = Obs.Metrics.counter "bulk.frontier_bits" in
  let m_words = Obs.Metrics.counter "bulk.words_anded" in
  let cells = Suite.e16_cells ~seed:16 ~quick:!quick in
  Format.printf "%-14s %6s %8s %4s %10s %10s %10s %8s %6s@." "cell" "nodes"
    "edges" "nfa" "pointwise" "multi-src" "all-pairs" "speedup" "agree";
  List.iter
    (fun (name, g, re) ->
      let nfa = Nfa.of_regex re in
      let n = Graph.nnodes g in
      let m = nfa.Nfa.nstates in
      let rel_ps, t_ps = time_it (fun () -> Path_search.reach_relation g nfa) in
      let s0 = Obs.Metrics.counter_value m_sweeps in
      let f0 = Obs.Metrics.counter_value m_frontier in
      let w0 = Obs.Metrics.counter_value m_words in
      let rel_ms, t_ms =
        time_it (fun () ->
            Bulk_rpq.reach_relation ~strategy:Bulk_rpq.Multi_source g nfa)
      in
      let sweeps = Obs.Metrics.counter_value m_sweeps - s0 in
      let frontier = Obs.Metrics.counter_value m_frontier - f0 in
      let words = Obs.Metrics.counter_value m_words - w0 in
      (* all-pairs closure is quadratic in the product size; keep it to
         the cells where that stays cheap *)
      let ap =
        if n * m <= 1500 then
          let rel_ap, t_ap =
            time_it (fun () ->
                Bulk_rpq.reach_relation ~strategy:Bulk_rpq.All_pairs g nfa)
          in
          Some (rel_ap, t_ap)
        else None
      in
      let agree =
        rel_ms = rel_ps
        && match ap with Some (rel_ap, _) -> rel_ap = rel_ps | None -> true
      in
      let pairs =
        Array.fold_left
          (fun acc row ->
            Array.fold_left (fun a b -> if b then a + 1 else a) acc row)
          0 rel_ms
      in
      let speedup = if t_ms > 0.0 then t_ps /. t_ms else 0.0 in
      Format.printf "%-14s %6d %8d %4d %a %a %10s %7.1fx %6b@." name n
        (Graph.nedges g) m pp_ms t_ps pp_ms t_ms
        (match ap with
        | Some (_, t_ap) -> Format.asprintf "%a" pp_ms t_ap
        | None -> "-")
        speedup agree;
      bulk_rows :=
        Obs.Json.Obj
          ([
             ("cell", Obs.Json.String name);
             ("nodes", Obs.Json.Int n);
             ("edges", Obs.Json.Int (Graph.nedges g));
             ("nfa_states", Obs.Json.Int m);
             ("pointwise_ns", Obs.Json.Int (int_of_float (t_ps *. 1e9)));
             ("multi_source_ns", Obs.Json.Int (int_of_float (t_ms *. 1e9)));
             ("rel_pairs", Obs.Json.Int pairs);
             ("sweeps", Obs.Json.Int sweeps);
             ("frontier_bits", Obs.Json.Int frontier);
             ("words_anded", Obs.Json.Int words);
             ("agree", Obs.Json.Bool agree);
           ]
          @
          match ap with
          | Some (_, t_ap) ->
            [ ("all_pairs_ns", Obs.Json.Int (int_of_float (t_ap *. 1e9))) ]
          | None -> [])
        :: !bulk_rows;
      if not agree then
        failwith (Printf.sprintf "bulk relation diverges on cell %s" name))
    cells

(* ------------------------------------------------------------------ *)
(* E17: tiled sparse engine on ≥ 5·10⁵-edge graphs                      *)
(* ------------------------------------------------------------------ *)

(* Past the dense-matrix wall: every cell samples a fixed source set,
   answers single-source reachability pointwise (one product BFS per
   source) and in bulk ([Bulk_rpq.reach_pairs] — tiled, hybrid
   sparse/dense sweeps), and checks the answer sets source-for-source
   before any timing is reported.  Each row records the sweep-mode
   split, the tile geometry and the measured peak tile working set, so
   CI can assert (a) the largest cell runs sparse sweeps and wins, and
   (b) peak memory stays within the O(B·n) tile bound.  A final
   deciders row runs containment decisions with the engine forced on
   and reports the bulk.dispatch.containment.* delta — the proof that
   the expansion-side checks consume bulk relations. *)
let run_bulk_scale () =
  section "E17" "Tiled sparse bulk engine on large graphs";
  let m_sweeps = Obs.Metrics.counter "bulk.sweeps" in
  let m_sparse = Obs.Metrics.counter "bulk.sweep_sparse" in
  let m_dense = Obs.Metrics.counter "bulk.sweep_dense" in
  let m_tiles = Obs.Metrics.counter "bulk.tiles" in
  let m_scattered = Obs.Metrics.counter "bulk.bits_scattered" in
  let cells = Suite.e17_cells ~seed:17 ~quick:!quick in
  Format.printf "%-20s %7s %8s %4s %10s %10s %8s %6s %6s %6s %6s@." "cell"
    "nodes" "edges" "nfa" "pointwise" "bulk" "speedup" "swp(s)" "swp(d)"
    "tiles" "agree";
  List.iter
    (fun (name, re, build) ->
      let g, srcs = build () in
      let nfa = Nfa.of_regex re in
      let n = Graph.nnodes g in
      let m = nfa.Nfa.nstates in
      let pw, t_pw =
        time_it (fun () ->
            Array.map (fun s -> List.sort compare (Path_search.reachable g nfa s)) srcs)
      in
      Bulk_rpq.reset_peak_tile_words ();
      let s0 = Obs.Metrics.counter_value m_sweeps in
      let sp0 = Obs.Metrics.counter_value m_sparse in
      let d0 = Obs.Metrics.counter_value m_dense in
      let ti0 = Obs.Metrics.counter_value m_tiles in
      let sc0 = Obs.Metrics.counter_value m_scattered in
      let pairs, t_bulk = time_it (fun () -> Bulk_rpq.reach_pairs g nfa srcs) in
      let sweeps = Obs.Metrics.counter_value m_sweeps - s0 in
      let sparse = Obs.Metrics.counter_value m_sparse - sp0 in
      let dense = Obs.Metrics.counter_value m_dense - d0 in
      let tiles = Obs.Metrics.counter_value m_tiles - ti0 in
      let scattered = Obs.Metrics.counter_value m_scattered - sc0 in
      let peak = Bulk_rpq.peak_tile_words () in
      let block = Bulk_rpq.block_rows ~nstates:m ~nnodes:n in
      let agree = ref true in
      Array.iteri
        (fun i expected ->
          let got = ref [] in
          Bitmatrix.iter_row pairs i (fun v -> got := v :: !got);
          if List.rev !got <> expected then agree := false)
        pw;
      let reached = Bitmatrix.popcount pairs in
      let speedup = if t_bulk > 0.0 then t_pw /. t_bulk else 0.0 in
      Format.printf "%-20s %7d %8d %4d %a %a %7.1fx %6d %6d %6d %6b@." name n
        (Graph.nedges g) m pp_ms t_pw pp_ms t_bulk speedup sparse dense tiles
        !agree;
      bulk_scale_rows :=
        Obs.Json.Obj
          [
            ("cell", Obs.Json.String name);
            ("nodes", Obs.Json.Int n);
            ("edges", Obs.Json.Int (Graph.nedges g));
            ("nfa_states", Obs.Json.Int m);
            ("sources", Obs.Json.Int (Array.length srcs));
            ("pointwise_ns", Obs.Json.Int (int_of_float (t_pw *. 1e9)));
            ("bulk_ns", Obs.Json.Int (int_of_float (t_bulk *. 1e9)));
            ("reached_pairs", Obs.Json.Int reached);
            ("sweeps", Obs.Json.Int sweeps);
            ("sweep_sparse", Obs.Json.Int sparse);
            ("sweep_dense", Obs.Json.Int dense);
            ("tiles", Obs.Json.Int tiles);
            ("bits_scattered", Obs.Json.Int scattered);
            ("block_rows", Obs.Json.Int block);
            ("peak_tile_words", Obs.Json.Int peak);
            ("agree", Obs.Json.Bool !agree);
          ]
        :: !bulk_scale_rows;
      if not !agree then
        failwith (Printf.sprintf "bulk reach_pairs diverges on cell %s" name))
    cells;
  (* Deciders row: the expansion-side atom relations of the containment
     deciders must reach the bulk engine (caller attribution). *)
  let with_mode m f =
    let prev = Bulk_rpq.current_mode () in
    Bulk_rpq.set_mode m;
    Fun.protect ~finally:(fun () -> Bulk_rpq.set_mode prev) f
  in
  let dispatch_total () =
    List.fold_left
      (fun acc engine ->
        acc
        + Obs.Metrics.counter_value
            (Obs.Metrics.counter ("bulk.dispatch.containment." ^ engine)))
      0
      [ "pointwise"; "multi_source"; "all_pairs" ]
  in
  let pairs =
    [
      ( "Q(x, z) :- x -[a+]-> y, y -[b+]-> z",
        "Q(x, z) :- x -[b+]-> y, y -[(a|b)+]-> z" );
      ( "Q(x, z) :- x -[a+]-> y, y -[b+]-> z",
        "Q(x, z) :- x -[a+]-> y, y -[(a|b)+]-> z" );
      ( "Q(x, y) :- x -[(ab)+]-> y, x -[a+]-> z",
        "Q(x, y) :- x -[(a|b)+]-> y, x -[(a|b)+]-> z" );
    ]
  in
  let d0 = dispatch_total () in
  let verdicts, t_dec =
    time_it (fun () ->
        with_mode Bulk_rpq.On (fun () ->
            List.map
              (fun (s1, s2) ->
                Containment.decide Semantics.St (Crpq.parse s1) (Crpq.parse s2))
              pairs))
  in
  let bulk_relations = dispatch_total () - d0 in
  Format.printf
    "@.deciders: %d St containment decisions, %d expansion-side bulk \
     relations (bulk.dispatch.containment.*), %a@."
    (List.length verdicts) bulk_relations pp_ms t_dec;
  bulk_scale_rows :=
    Obs.Json.Obj
      [
        ("cell", Obs.Json.String "deciders");
        ("decisions", Obs.Json.Int (List.length verdicts));
        ("bulk_relations", Obs.Json.Int bulk_relations);
        ("wall_ns", Obs.Json.Int (int_of_float (t_dec *. 1e9)));
      ]
    :: !bulk_scale_rows;
  if bulk_relations = 0 then
    failwith "containment deciders consumed no bulk relations"

(* ------------------------------------------------------------------ *)
(* E14: the certified optimizer — shrinkage, certificate cost, payoff   *)
(* ------------------------------------------------------------------ *)

(* Four query families exercise the rewrite engine's behaviours:
   redundant atoms that St-containment certifies away (and their cost
   as the redundancy count grows), the q-inj soundness guard that must
   refuse the same-looking drop, the unsatisfiable collapse, and the
   ε-merge.  Each row records the shrinkage, the certificate-check
   count and cost, and the before/after evaluation time on a random
   graph — the "payoff" column that justifies running the pre-pass. *)

let run_optimize () =
  section "E14"
    "Certified optimizer: shrinkage, certificate cost, evaluation payoff";
  let m_checked = Obs.Metrics.counter "analysis.certificates_checked" in
  let implied = [| "x -[a|b]-> y"; "x -[a|b|c]-> y"; "x -[a|c]-> y" |] in
  let redundant_st k =
    let atoms =
      "x -[a]-> y, y -[b]-> z"
      :: List.init k (fun i -> implied.(i mod Array.length implied))
    in
    Crpq.parse ("Q(x, z) :- " ^ String.concat ", " atoms)
  in
  let families =
    let ks = if !quick then [ 1; 2 ] else [ 1; 2; 3 ] in
    List.map
      (fun k ->
        (Printf.sprintf "redundant-st/%d" k, Semantics.St, redundant_st k))
      ks
    @ [
        ( "duplicate-qinj",
          Semantics.Q_inj,
          Crpq.parse "Q(x, y) :- x -[aa]-> y, x -[aa]-> y" );
        ( "unsat-collapse",
          Semantics.St,
          Crpq.parse "Q(x) :- x -[!]-> y, y -[a]-> z, z -[b]-> x" );
        ( "eps-merge",
          Semantics.St,
          Crpq.parse "Q(x) :- x -[%]-> y, y -[a]-> z, z -[%]-> w" );
      ]
  in
  let rng = Random.State.make [| 0xF14 |] in
  let nodes = if !quick then 8 else 12 in
  let g = Generate.gnp ~rng ~nodes ~labels:[ "a"; "b"; "c" ] ~p:0.3 in
  Format.printf "%-16s %-6s %6s %6s %4s %4s %6s %10s %10s %10s@." "family"
    "sem" "atoms" "after" "tw" "tw'" "certs" "cert-time" "eval" "eval'";
  List.iter
    (fun (name, sem, q) ->
      let c0 = Obs.Metrics.counter_value m_checked in
      let (q', report), t_opt = time_it (fun () -> Analysis.optimize ~sem q) in
      let certs = Obs.Metrics.counter_value m_checked - c0 in
      let _, t_before = time_it (fun () -> ignore (Eval.eval sem q g)) in
      let _, t_after = time_it (fun () -> ignore (Eval.eval sem q' g)) in
      let tw s = s.Query_shape.width in
      let before = report.Analysis.shape_before
      and after = report.Analysis.shape_after in
      optimize_rows :=
        Obs.Json.Obj
          [
            ("family", Obs.Json.String name);
            ("sem", Obs.Json.String (Semantics.to_string sem));
            ("atoms_before", Obs.Json.Int before.Query_shape.atoms);
            ("atoms_after", Obs.Json.Int after.Query_shape.atoms);
            ( "atoms_removed",
              Obs.Json.Int (Rewrite.removed_atoms report.Analysis.rewrite) );
            ("treewidth_before", Obs.Json.Int (tw before));
            ("treewidth_after", Obs.Json.Int (tw after));
            ("certificates_checked", Obs.Json.Int certs);
            ("optimize_wall_ns", Obs.Json.Int (int_of_float (t_opt *. 1e9)));
            ("eval_before_wall_ns", Obs.Json.Int (int_of_float (t_before *. 1e9)));
            ("eval_after_wall_ns", Obs.Json.Int (int_of_float (t_after *. 1e9)));
          ]
        :: !optimize_rows;
      Format.printf "%-16s %-6s %6d %6d %4d %4d %6d %a %a %a@." name
        (Semantics.to_string sem) before.Query_shape.atoms
        after.Query_shape.atoms (tw before) (tw after) certs pp_ms t_opt pp_ms
        t_before pp_ms t_after)
    families;
  Format.printf
    "@.Soundness check rows: duplicate-qinj must NOT shrink (the Thm 5.1@.\
     certificate refutes the drop); every other family must.@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E15: serve — daemon throughput and latency over a socketpair        *)
(* ------------------------------------------------------------------ *)

(* The daemon runs in-process on its own domains, driven over one end
   of a socketpair with a window of pipelined requests; the client
   records per-request latency (send to response) and computes exact
   percentiles, so this measures the full serving path: frame parse,
   admission, queue, worker guard/retry, response write. *)
let run_serve () =
  section "E15"
    "serve daemon: pipelined eval/contain mix over a socketpair (p50/p99)";
  let g = Paper_examples.example_21_g' in
  let cfg =
    Serve.Server.config ~workers:2 ~queue_bound:64 ~timeout_ms:10_000
      ~graphs:[ ("default", g) ] ()
  in
  let srv = Serve.Server.create cfg in
  let sfd, cfd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server = Domain.spawn (fun () -> Serve.Server.run srv ~adopt:[ sfd ] ()) in
  let client = Serve.Client.of_fd cfd in
  (match Serve.Client.greeting ~timeout_ms:10_000 client with
  | Ok _ -> ()
  | Error e -> failwith ("serve bench: no greeting: " ^ e));
  let n = if !quick then 200 else 1000 in
  let window = 16 in
  let op_of i = if i mod 5 = 3 then "contain" else "eval" in
  let request_of i =
    match op_of i with
    | "contain" ->
      Serve.Protocol.request ~id:(Obs.Json.Int i) ~sem:Semantics.Q_inj
        ~lhs:"Q(x, y) :- x -[ab]-> y" ~rhs:"Q(x, y) :- x -[(ab)+]-> y"
        Serve.Protocol.Contain
    | _ ->
      Serve.Protocol.request ~id:(Obs.Json.Int i)
        ~sem:(match i mod 3 with 0 -> Semantics.St | 1 -> Semantics.A_inj | _ -> Semantics.Q_inj)
        ~query:"Q(x, y) :- x -[(ab)*]-> y, y -[c*]-> x" Serve.Protocol.Eval
  in
  let sent_ns = Array.make n 0L in
  let lat_us = Array.make n 0 in
  let statuses = Hashtbl.create 4 in
  let next = ref 0 in
  let send_one () =
    let i = !next in
    sent_ns.(i) <- Obs.Clock.now_ns ();
    (match Serve.Client.send client (request_of i) with
    | Ok () -> ()
    | Error e -> failwith ("serve bench: send: " ^ e));
    incr next
  in
  let recv_one () =
    match Serve.Client.recv ~timeout_ms:30_000 client with
    | Error e -> failwith ("serve bench: recv: " ^ e)
    | Ok resp ->
      let st = Serve.Protocol.status_to_string resp.Serve.Protocol.status in
      Hashtbl.replace statuses st
        (1 + Option.value (Hashtbl.find_opt statuses st) ~default:0);
      (match resp.Serve.Protocol.id with
      | Obs.Json.Int i when i >= 0 && i < n ->
        lat_us.(i) <-
          Int64.to_int (Int64.sub (Obs.Clock.now_ns ()) sent_ns.(i)) / 1000
      | _ -> failwith "serve bench: response with unexpected id")
  in
  let _, total_s =
    time_it (fun () ->
        while !next < min window n do
          send_one ()
        done;
        let received = ref 0 in
        while !received < n do
          recv_one ();
          incr received;
          if !next < n then send_one ()
        done)
  in
  Serve.Server.shutdown srv;
  Domain.join server;
  Serve.Client.close client;
  let throughput = float_of_int n /. total_s in
  let percentile sorted q =
    let m = Array.length sorted in
    sorted.(min (m - 1) (int_of_float (Float.ceil (q *. float_of_int m)) - 1))
  in
  let row name (lats : int array) =
    if Array.length lats > 0 then begin
      let sorted = Array.copy lats in
      Array.sort compare sorted;
      let p50 = percentile sorted 0.50 and p99 = percentile sorted 0.99 in
      Format.printf "%-10s %6d req  p50 %7.2fms  p99 %7.2fms@." name
        (Array.length lats)
        (float_of_int p50 /. 1000.0)
        (float_of_int p99 /. 1000.0);
      serve_rows :=
        Obs.Json.Obj
          [
            ("op", Obs.Json.String name);
            ("requests", Obs.Json.Int (Array.length lats));
            ("p50_us", Obs.Json.Int p50);
            ("p99_us", Obs.Json.Int p99);
          ]
        :: !serve_rows
    end
  in
  Format.printf "%d requests, window %d, 2 workers: %.0f req/s in %.2fs@." n
    window throughput total_s;
  let of_op op =
    Array.of_list
      (List.filteri (fun i _ -> op_of i = op) (Array.to_list lat_us))
  in
  row "eval" (of_op "eval");
  row "contain" (of_op "contain");
  row "all" lat_us;
  serve_rows :=
    Obs.Json.Obj
      [
        ("op", Obs.Json.String "throughput");
        ("requests", Obs.Json.Int n);
        ("window", Obs.Json.Int window);
        ("requests_per_s", Obs.Json.Float throughput);
        ( "statuses",
          Obs.Json.Obj
            (Hashtbl.fold
               (fun st c acc -> (st, Obs.Json.Int c) :: acc)
               statuses []) );
      ]
    :: !serve_rows;
  Format.printf "statuses: %s@."
    (String.concat ", "
       (Hashtbl.fold
          (fun st c acc -> Printf.sprintf "%s=%d" st c :: acc)
          statuses []))

let bechamel_section () =
  section "BECH" "Bechamel micro-benchmarks (OLS ns/run estimates)";
  let open Bechamel in
  let open Toolkit in
  let g = Paper_examples.example_21_g' in
  let q = Paper_examples.example_21_query in
  let q47 = Paper_examples.example_47_expectations in
  let qinj_q1 = Crpq.parse "x -[(ab)+]-> y, y -[a+]-> z" in
  let qinj_q2 = Crpq.parse "x -[(a|b)+]-> z, x -[(ab)+]-> y" in
  let tests =
    [
      Test.make ~name:"eval/st" (Staged.stage (fun () -> Eval.eval Semantics.St q g));
      Test.make ~name:"eval/a-inj"
        (Staged.stage (fun () -> Eval.eval Semantics.A_inj q g));
      Test.make ~name:"eval/q-inj"
        (Staged.stage (fun () -> Eval.eval Semantics.Q_inj q g));
      Test.make ~name:"eval/a-edge-inj"
        (Staged.stage (fun () -> Eval.eval Semantics.A_edge_inj q g));
      Test.make ~name:"containment/ex47"
        (Staged.stage (fun () ->
             List.iter
               (fun (_, sem, q1, q2, _) -> ignore (Containment.decide sem q1 q2))
               q47));
      Test.make ~name:"containment/qinj-abstraction"
        (Staged.stage (fun () -> ignore (Containment_qinj.decide qinj_q1 qinj_q2)));
      Test.make ~name:"rpq/simple-path"
        (Staged.stage (fun () ->
             ignore (Rpq.eval_simple_path (Regex.parse "(ab)*") g)));
      Test.make ~name:"nfa/of_regex"
        (Staged.stage (fun () -> Nfa.of_regex (Regex.parse "((a|b)c*(ab)+)*")));
    ]
  in
  let quota = if !quick then 0.25 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  Format.printf "%-32s %14s %8s@." "benchmark" "ns/run" "r²";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg Instance.[ monotonic_clock ] test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%14.0f" e
            | _ -> "           n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Printf.sprintf "%8.4f" r
            | None -> "     n/a"
          in
          Format.printf "%-32s %s %s@." name est r2)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let usage_error msg =
  Format.eprintf "bench: %s@." msg;
  Format.eprintf
    "usage: main.exe [--quick] [--deadline-ms N] [--jobs N] [--output FILE] \
     [--compare BASELINE.json] [--tolerance PCT] [--wall-tolerance PCT] \
     [--profile-out FILE] [--chrome-out FILE] [experiment ...]@.";
  exit 2

let parse_args () =
  let argv = Sys.argv in
  let n = Array.length argv in
  let value_of ~flag arg i =
    (* accepts both --flag=V and --flag V *)
    let prefix = flag ^ "=" in
    let plen = String.length prefix in
    if String.length arg > plen && String.sub arg 0 plen = prefix then
      Some (String.sub arg plen (String.length arg - plen), i)
    else if arg = flag then
      if i + 1 < n then Some (argv.(i + 1), i + 1)
      else usage_error (flag ^ " needs a value")
    else None
  in
  let int_value ~flag ~min store v =
    match int_of_string_opt v with
    | Some x when x >= min -> store x
    | _ -> usage_error (Printf.sprintf "bad %s value: %s" flag v)
  in
  let pct_value ~flag store v =
    match float_of_string_opt v with
    | Some x when x >= 0.0 -> store x
    | _ -> usage_error (Printf.sprintf "bad %s value: %s" flag v)
  in
  let flags =
    [
      ("--deadline-ms", int_value ~flag:"--deadline-ms" ~min:0 (( := ) deadline_ms));
      ("--jobs", int_value ~flag:"--jobs" ~min:1 Parmap.set_default_jobs);
      ("--output", ( := ) output_file);
      ("--compare", fun v -> compare_file := Some v);
      ("--tolerance", pct_value ~flag:"--tolerance" (( := ) tolerance));
      ( "--wall-tolerance",
        pct_value ~flag:"--wall-tolerance" (( := ) wall_tolerance) );
      ("--profile-out", fun v -> profile_out := Some v);
      ("--chrome-out", fun v -> chrome_out := Some v);
    ]
  in
  let i = ref 1 in
  while !i < n do
    let arg = argv.(!i) in
    if arg = "--quick" then quick := true
    else begin
      let matched =
        List.exists
          (fun (flag, apply) ->
            match value_of ~flag arg !i with
            | Some (v, j) ->
              i := j;
              apply v;
              true
            | None -> false)
          flags
      in
      if not matched then selected := arg :: !selected
    end;
    incr i
  done

(* SIGTERM / SIGINT: rewrite the partial results file (the completed
   prefix of the run) before terminating, so a killed CI job still
   leaves a valid BENCH_results.json behind. *)
let install_signal_handlers () =
  let handle code =
    Sys.Signal_handle
      (fun _ ->
        (try write_results () with Sys_error _ -> ());
        Format.eprintf "bench: terminated by signal; partial %s written@."
          !output_file;
        exit code)
  in
  (try Sys.set_signal Sys.sigterm (handle 143) with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigint (handle 130) with Invalid_argument _ -> ()

let () =
  Obs.Metrics.set_enabled true;
  parse_args ();
  install_signal_handlers ();
  if !profile_out <> None then Obs.Profile.arm ();
  if !chrome_out <> None then Obs.Trace.set_enabled true;
  let experiments =
    [
      ("fig1", run_fig1);
      ("fig2", run_fig2);
      ("hierarchy", run_hierarchy);
      ("ex47", run_ex47);
      ("expansions", run_expansions);
      ("thm51", run_thm51);
      ("thm52", run_thm52);
      ("thm61", run_thm61);
      ("thm62", run_thm62);
      ("eval", run_eval_bench);
      ("trails", run_trails);
      ("ablations", run_ablations);
      ("morphism", run_morphism);
      ("bulk", run_bulk);
      ("bulk_scale", run_bulk_scale);
      ("optimize", run_optimize);
      ("serve", run_serve);
      ("bechamel", bechamel_section);
    ]
  in
  Format.printf "CRPQ injective-semantics benchmark harness (PODS'23 reproduction)@.";
  Format.printf "experiments: %s%s@."
    (String.concat " " (List.map fst experiments))
    (if !quick then " (quick mode)" else "");
  List.iter (fun (name, f) -> if want name then run_experiment name f) experiments;
  write_results ();
  (* the file must round-trip through the Obs JSON reader *)
  let file = !output_file in
  let ic = open_in file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match Obs.Json.parse contents with
  | Ok _ -> Format.printf "@.wrote %s (%d bytes)@." file (String.length contents)
  | Error e ->
    Format.eprintf "error: %s does not parse: %s@." file e;
    exit 1);
  (match !profile_out with
  | None -> ()
  | Some f ->
    Obs.Profile.write_collapsed f;
    Format.printf "wrote %s (%d call paths)@." f
      (List.length (Obs.Profile.samples ())));
  (match !chrome_out with
  | None -> ()
  | Some f ->
    Obs.Trace.write_chrome f (Obs.Trace.finished ());
    Format.printf "wrote %s (%d top-level spans, %d dropped)@." f
      (List.length (Obs.Trace.finished ()))
      (Obs.Trace.dropped ()));
  (* the gate runs last: everything above is already on disk, so a
     failing gate still leaves the full results and artifacts behind *)
  (match !compare_file with None -> () | Some f -> run_compare f);
  Format.printf "done.@."
